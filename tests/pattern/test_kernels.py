"""Unit tests for the batch-kernel lowering and truth materialization.

Stage 1 (:mod:`repro.pattern.kernels`) turns element predicates into
frozen symbolic programs; stage 2 (:mod:`repro.engine.columnar`) binds
them to column data and emits truth bytes.  These tests pin the edges:
empty inputs, NaN and non-numeric cells, band-fused conjunctions, the
PR 8 residual-on-star-binding class (must decline to lower), bitset vs
index-list agreement, kernel deduplication across Example 10's repeated
shapes, and Python vs NumPy backend bit-parity.
"""

from __future__ import annotations

import math

import pytest

from repro.data.djia import djia_table
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.columnar import (
    first_element_candidates,
    materialize_kernels,
    numpy_backend,
)
from repro.engine.executor import Executor
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.kernels import Disjunction, ElementKernel, plan_element
from repro.pattern.predicates import AttributeDomains

DOMAINS = AttributeDomains.prices()


def prepare(sql):
    executor = Executor(
        Catalog([djia_table()]), domains=AttributeDomains.prices()
    )
    _, compiled = executor.prepare(sql)
    return compiled


def price_rows(prices):
    return [{"price": p, "date": index} for index, p in enumerate(prices)]


DOWN_UP = (
    "SELECT X.date FROM djia SEQUENCE BY date AS (X, *Y, Z) "
    "WHERE Y.price < Y.previous.price AND Z.price > 1.02 * Z.previous.price"
)


def truth_matches_evaluators(compiled, rows, kernels):
    """Each truth byte equals the row evaluator's verdict, positionwise."""
    for j, truth in enumerate(kernels.truth, start=1):
        if truth is None:
            continue
        evaluator = compiled.evaluators[j - 1]
        assert evaluator is not None
        for index in range(len(rows)):
            assert truth[index] == int(evaluator(rows, index, {})), (j, index)


# ----------------------------------------------------------------------
# Edges of materialization
# ----------------------------------------------------------------------


def test_empty_rows_materialize_empty_truth():
    compiled = prepare(DOWN_UP)
    kernels = materialize_kernels(compiled, [])
    assert kernels is not None
    assert kernels.n == 0
    for j in (2, 3):
        assert kernels.truth[j - 1] == b""
        assert kernels.candidates(j) == 0
        assert kernels.indices(j) == []
    assert OpsStarMatcher().find_matches([], compiled, kernels=kernels) == []


def test_nan_cells_are_false_on_both_paths():
    compiled = prepare(DOWN_UP)
    rows = price_rows([50.0, float("nan"), 45.0, 50.0, 52.0])
    for backend in ("python", "numpy"):
        kernels = materialize_kernels(compiled, rows, backend=backend)
        assert kernels is not None
        truth_matches_evaluators(compiled, rows, kernels)
        # NaN fails every comparison: positions touching the NaN cell
        # are 0 in both the < and > kernels.
        assert kernels.truth[1][1] == 0 and kernels.truth[1][2] == 0
        assert kernels.truth[2][1] == 0 and kernels.truth[2][2] == 0


def test_non_numeric_cell_falls_back_to_row_evaluator():
    """A cell that would raise TypeError in ``a * value + b`` must leave
    the element on the row path, where the error surfaces (or
    short-circuits away) exactly as it always did."""
    compiled = prepare(DOWN_UP)
    rows = price_rows([50.0, 45.0, 50.0])
    rows[1]["price"] = "not-a-price"
    kernels = materialize_kernels(compiled, rows)
    if kernels is not None:
        assert kernels.truth[1] is None and kernels.truth[2] is None


def test_missing_column_cell_is_false():
    compiled = prepare(DOWN_UP)
    rows = price_rows([50.0, 45.0, 50.0, 52.0])
    del rows[1]["price"]
    kernels = materialize_kernels(compiled, rows)
    assert kernels is not None
    truth_matches_evaluators(compiled, rows, kernels)


def test_interpreted_plan_has_no_kernels():
    executor = Executor(
        Catalog([djia_table()]), domains=AttributeDomains.prices(), codegen=False
    )
    _, compiled = executor.prepare(DOWN_UP)
    assert compiled.kernel_plan.lowered == 0
    assert materialize_kernels(compiled, price_rows([50.0, 45.0])) is None


# ----------------------------------------------------------------------
# Lowering coverage
# ----------------------------------------------------------------------


def test_band_fused_element_lowers_with_flag():
    sql = (
        "SELECT Z.date FROM djia SEQUENCE BY date AS (X, Z) "
        "WHERE 0.98 * Z.previous.price < Z.price "
        "AND Z.price < 1.02 * Z.previous.price"
    )
    compiled = prepare(sql)
    kernel = compiled.kernel_plan.elements[1]
    assert kernel is not None and kernel.band_fused
    # The row path fuses the same pair (the flight-recorder marker).
    assert getattr(compiled.evaluators[1], "band_fused", False)
    rows = price_rows([50.0, 49.5, 49.0, 51.0, 50.8])
    kernels = materialize_kernels(compiled, rows)
    truth_matches_evaluators(compiled, rows, kernels)


def test_residual_star_binding_element_declines():
    """The PR 8 class: ``B.price > A.price`` with ``*A`` resolves A's
    binding per attempt — a residual.  The element must not lower, and
    matches must equal the row path on the regression input."""
    sql = (
        "SELECT A.date FROM djia SEQUENCE BY date "
        "AS (*A, B) WHERE A.price < A.previous.price AND B.price > A.price"
    )
    compiled = prepare(sql)
    plan = compiled.kernel_plan
    assert plan.elements[0] is not None  # *A: offset-expressible
    assert plan.elements[1] is None  # B references A's binding
    rows = price_rows([60.0, 50.0, 40.0, 50.0])
    kernels = materialize_kernels(compiled, rows)
    assert kernels is not None and kernels.truth[1] is None
    oracle = OpsStarMatcher().find_matches(rows, compiled)
    got = OpsStarMatcher().find_matches(rows, compiled, kernels=kernels)
    assert got == oracle
    assert NaiveMatcher().find_matches(rows, compiled, kernels=kernels) == oracle


def test_disjunction_lowers():
    sql = (
        "SELECT X.date FROM djia SEQUENCE BY date AS (X) "
        "WHERE (X.price < 35 OR X.price > 65)"
    )
    compiled = prepare(sql)
    kernel = compiled.kernel_plan.elements[0]
    assert kernel is not None
    assert any(isinstance(step, Disjunction) for step in kernel.steps)
    rows = price_rows([30.0, 50.0, 70.0])
    kernels = materialize_kernels(compiled, rows)
    assert kernels.truth[0] == bytes([1, 0, 1])


def test_opaque_predicate_declines(example4_predicates):
    """A hand-built predicate with a residual lambda cannot lower."""
    from repro.pattern.predicates import ResidualCondition, predicate

    opaque = predicate(
        ResidualCondition(lambda ctx: True, "opaque"),
        domains=DOMAINS,
        label="opaque",
    )
    assert plan_element(opaque) is None
    # Symbolic-only predicates from the paper's Example 4 all lower.
    for predicate in example4_predicates:
        assert plan_element(predicate) is not None


# ----------------------------------------------------------------------
# Representation agreement and dedup
# ----------------------------------------------------------------------


def test_bitset_and_index_list_agree():
    compiled = prepare(DOWN_UP)
    rows = price_rows([50.0, 45.0, 44.0, 46.0, 48.0, 47.0, 49.0])
    kernels = materialize_kernels(compiled, rows)
    for j in range(1, compiled.m + 1):
        truth = kernels.truth[j - 1]
        if truth is None:
            assert kernels.indices(j) is None
            assert kernels.candidates(j) is None
            continue
        expected = [index for index in range(len(rows)) if truth[index]]
        assert kernels.indices(j) == expected
        assert kernels.candidates(j) == len(expected)


def test_example_10_repeated_shapes_share_truth():
    """Example 10 repeats its down/flat/up shapes across the starred
    elements; equal kernels must deduplicate to one truth object."""
    compiled = prepare(EXAMPLE_10)
    plan = compiled.kernel_plan
    assert plan.lowered == compiled.m  # everything lowers
    # Z, U, W share the flat band; Y, V share the drop; T, R the rise.
    assert plan.elements[2] == plan.elements[4] == plan.elements[6]
    assert plan.elements[1] == plan.elements[5]
    assert plan.elements[3] == plan.elements[7]
    rows = price_rows(
        [50.0, 49.0, 47.0, 47.5, 49.5, 49.0, 47.0, 47.5, 49.5, 50.0]
    )
    kernels = materialize_kernels(compiled, rows)
    assert kernels.truth[2] is kernels.truth[4] is kernels.truth[6]
    assert kernels.truth[1] is kernels.truth[5]
    assert kernels.truth[3] is kernels.truth[7]


def test_first_element_candidates():
    compiled = prepare(DOWN_UP)
    rows = price_rows([50.0, 45.0, 44.0, 46.0])
    count = first_element_candidates(compiled, rows)
    # X is unconstrained: every position is a candidate.
    assert count == len(rows)


# ----------------------------------------------------------------------
# Backend parity
# ----------------------------------------------------------------------


def test_python_and_numpy_backends_agree_bitwise():
    if numpy_backend() is None:
        pytest.skip("numpy unavailable")
    compiled = prepare(EXAMPLE_10)
    prices = [50.0 + math.sin(i / 3.0) * 5.0 + (i % 7) * 0.3 for i in range(200)]
    rows = price_rows(prices)
    python = materialize_kernels(compiled, rows, backend="python")
    vector = materialize_kernels(compiled, rows, backend="numpy")
    assert python.backend == "python"
    assert vector.backend == "numpy"
    assert python.truth == vector.truth


def test_numpy_env_switch(monkeypatch):
    if numpy_backend() is None:
        pytest.skip("numpy unavailable")
    monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    assert numpy_backend() is None
    monkeypatch.delenv("REPRO_COLUMNAR_NUMPY")
    assert numpy_backend() is not None


def test_int_cells_use_python_backend_exactly():
    """Int columns (exact Python semantics) stay off the float fast path
    but still produce correct truth."""
    sql = (
        "SELECT X.date FROM djia SEQUENCE BY date AS (X) WHERE X.price > 50"
    )
    compiled = prepare(sql)
    rows = [{"price": p, "date": i} for i, p in enumerate([49, 50, 51, 10**40])]
    kernels = materialize_kernels(compiled, rows)
    assert kernels.truth[0] == bytes([0, 0, 1, 1])
    truth_matches_evaluators(compiled, rows, kernels)
