"""The pattern-builder DSL."""

import pytest

from repro.errors import PlanningError
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.dsl import (
    PatternBuilder,
    above,
    below,
    between,
    equals,
    falls,
    pct_change,
    rises,
)
from repro.pattern.predicates import AttributeDomains, EvalContext
from tests.conftest import price_rows


def ctx(prices, index):
    return EvalContext(price_rows(*prices), index)


class TestConditionBuilders:
    def test_rises_falls(self):
        assert rises().evaluate(ctx([10, 11], 1))
        assert not rises().evaluate(ctx([11, 10], 1))
        assert falls().evaluate(ctx([11, 10], 1))

    def test_bounds(self):
        assert below(10).evaluate(ctx([9], 0))
        assert not below(10).evaluate(ctx([10], 0))
        assert above(10).evaluate(ctx([11], 0))

    def test_between_is_two_conditions(self):
        low, high = between(30, 40)
        assert low.evaluate(ctx([35], 0)) and high.evaluate(ctx([35], 0))
        assert not low.evaluate(ctx([25], 0))
        assert not high.evaluate(ctx([45], 0))

    def test_pct_change(self):
        drop = pct_change("<", 0.98)
        assert drop.evaluate(ctx([100, 97], 1))
        assert not drop.evaluate(ctx([100, 99], 1))

    def test_equals(self):
        assert equals(10).evaluate(ctx([10], 0))
        assert not equals(10).evaluate(ctx([10.5], 0))

    def test_custom_attribute(self):
        condition = rises("volume")
        rows = [{"volume": 5}, {"volume": 9}]
        assert condition.evaluate(EvalContext(rows, 1))


class TestBuilder:
    def test_builds_compiled_pattern(self):
        plan = (
            PatternBuilder()
            .element("X")
            .star("D", falls())
            .element("R", rises(), below(30))
            .compile()
        )
        assert plan.m == 3
        assert plan.stars() == (False, True, False)

    def test_positive_domain_default_enables_ratio_rewrite(self):
        plan = (
            PatternBuilder()
            .element("X", pct_change(">=", 0.98))
            .star("Y", pct_change("<", 0.98))
            .compile()
        )
        # The phi entry that drives the double-bottom steady state.
        from repro.logic.tribool import TRUE

        assert plan.phi[2, 1] is TRUE

    def test_domains_override(self):
        plan = (
            PatternBuilder(domains=AttributeDomains.none())
            .element("X", pct_change(">=", 0.98))
            .star("Y", pct_change("<", 0.98))
            .compile()
        )
        assert plan.spec.element(1).predicate.has_residual

    def test_empty_builder_rejected(self):
        with pytest.raises(PlanningError):
            PatternBuilder().compile()

    def test_matchers_agree_on_dsl_pattern(self):
        plan = (
            PatternBuilder()
            .star("U", rises())
            .star("D", falls())
            .element("S", below(30))
            .compile()
        )
        rows = price_rows(50, 52, 54, 50, 45, 28, 60, 61, 40, 25)
        assert OpsStarMatcher().find_matches(rows, plan) == NaiveMatcher().find_matches(
            rows, plan
        )

    def test_spec_without_compile(self):
        spec = PatternBuilder().element("A", equals(10)).spec()
        assert spec.names == ("A",)
