"""S matrix and shift/next for star-free patterns: formulas and edge cases."""

import pytest

from repro.errors import PlanningError
from repro.logic.matrix import TriangularMatrix
from repro.logic.tribool import FALSE, TRUE, UNKNOWN
from repro.pattern.shift_next import ShiftNext, build_s_matrix, compute_shift_next


def diag(size, value="1"):
    m = TriangularMatrix(size, fill="U")
    for j in range(1, size + 1):
        m[j, j] = value
    return m


class TestBuildS:
    def test_size_mismatch_rejected(self):
        with pytest.raises(PlanningError):
            build_s_matrix(TriangularMatrix(2), TriangularMatrix(3))

    def test_single_element_pattern(self):
        s = build_s_matrix(diag(1), diag(1, "0"))
        assert s.to_rows() == [[]]

    def test_kmp_like_all_distinct(self):
        """Mutually exclusive elements: every theta off-diagonal is 0, so
        S rows are phi-driven for k = j-1 and 0 elsewhere."""
        theta = TriangularMatrix.from_rows(
            [["1"], ["0", "1"], ["0", "0", "1"]]
        )
        phi = TriangularMatrix.from_rows(
            [["0"], ["1", "0"], ["U", "1", "0"]]
        )
        s = build_s_matrix(theta, phi)
        # S[3,1] = theta[2,1] AND phi[3,2] = 0 AND 1 = 0
        assert s[3, 1] is FALSE
        # S[3,2] = phi[3,1] = U
        assert s[3, 2] is UNKNOWN
        assert s[2, 1] is TRUE  # = phi[2,1]

    def test_kleene_and_semantics(self):
        theta = TriangularMatrix.from_rows([["1"], ["U", "1"], ["1", "U", "1"]])
        phi = TriangularMatrix.from_rows([["0"], ["U", "0"], ["1", "1", "0"]])
        s = build_s_matrix(theta, phi)
        # S[3,1] = theta[2,1] AND phi[3,2] = U AND 1 = U
        assert s[3, 1] is UNKNOWN


class TestShift:
    def test_shift_is_smallest_nonzero_column(self, example4_pattern):
        from repro.pattern.analysis import build_phi, build_theta

        theta = build_theta(example4_pattern)
        phi = build_phi(example4_pattern)
        arrays, s = compute_shift_next(theta, phi)
        for j in range(2, 5):
            k = arrays.shift[j]
            if k < j:
                assert s[j, k] is not FALSE
                for smaller in range(1, k):
                    assert s[j, smaller] is FALSE

    def test_all_zero_row_gives_shift_j(self):
        theta = TriangularMatrix.from_rows([["1"], ["0", "1"]])
        phi = TriangularMatrix.from_rows([["0"], ["0", "0"]])
        arrays, _ = compute_shift_next(theta, phi)
        assert arrays.shift[2] == 2
        assert arrays.next_[2] == 0

    def test_shift_1_is_always_1(self):
        theta = diag(3)
        phi = diag(3, "0")
        arrays, _ = compute_shift_next(theta, phi)
        assert arrays.shift[1] == 1 and arrays.next_[1] == 0


class TestNext:
    def test_s_true_gives_full_skip(self):
        """S[j, shift] = 1 -> next = j - shift + 1 (skip the failed tuple)."""
        theta = TriangularMatrix.from_rows([["1"], ["0", "1"]])
        phi = TriangularMatrix.from_rows([["0"], ["1", "0"]])
        arrays, _ = compute_shift_next(theta, phi)
        assert arrays.shift[2] == 1
        assert arrays.next_[2] == 2

    def test_u_conjunct_selects_recheck_point(self):
        """next points at the first U factor of the S conjunction."""
        theta = TriangularMatrix.from_rows(
            [["1"], ["1", "1"], ["U", "1", "1"], ["1", "1", "U", "1"]]
        )
        phi = TriangularMatrix.from_rows(
            [["0"], ["U", "0"], ["U", "U", "0"], ["U", "U", "U", "0"]]
        )
        arrays, s = compute_shift_next(theta, phi)
        # j=4, shift=1: conjuncts theta[2,1]=1, theta[3,2]=1, phi[4,3]=U
        assert arrays.shift[4] == 1
        assert arrays.next_[4] == 3

    def test_next_bounds(self, example4_compiled):
        cp = example4_compiled
        for j in range(1, cp.m + 1):
            shift = cp.shift(j)
            if shift == j:
                assert cp.next(j) == 0
            else:
                assert 1 <= cp.next(j) <= j - shift + 1


class TestShiftNextContainer:
    def test_length_validation(self):
        with pytest.raises(PlanningError):
            ShiftNext((0, 1), (0,))

    def test_m(self):
        assert ShiftNext((0, 1, 1), (0, 0, 1)).m == 2
