"""End-to-end pattern compilation: plan structure and invariants."""

import pytest

from repro.errors import PlanningError
from repro.pattern.compiler import compile_pattern
from repro.pattern.spec import PatternElement, PatternSpec
from repro.pattern.predicates import comparison, true_predicate
from tests.conftest import PREV, PRICE, price_predicate


def spec_of(*defs):
    return PatternSpec(
        [PatternElement(name, pred, star=star) for name, pred, star in defs]
    )


class TestSpecValidation:
    def test_empty_pattern_rejected(self):
        with pytest.raises(PlanningError):
            PatternSpec([])

    def test_duplicate_names_rejected(self):
        p = price_predicate(comparison(PRICE, "<", 5))
        with pytest.raises(PlanningError):
            spec_of(("X", p, False), ("X", p, False))

    def test_element_accessor_is_one_based(self, example4_pattern):
        assert example4_pattern.element(1).name == "Y"
        with pytest.raises(IndexError):
            example4_pattern.element(0)
        with pytest.raises(IndexError):
            example4_pattern.element(5)

    def test_names_and_star(self, example9_pattern):
        assert example9_pattern.names == ("X", "Y", "Z", "T", "U", "V", "S")
        assert example9_pattern.has_star


class TestPlanShape:
    def test_nonstar_plan(self, example4_compiled):
        cp = example4_compiled
        assert not cp.has_star
        assert cp.s_matrix is not None
        assert cp.graph is None
        assert cp.m == 4
        assert cp.stars() == (False,) * 4

    def test_star_plan(self, example9_compiled):
        cp = example9_compiled
        assert cp.has_star
        assert cp.s_matrix is None
        assert cp.graph is not None

    def test_single_element(self):
        cp = compile_pattern(spec_of(("X", price_predicate(comparison(PRICE, "<", 5)), False)))
        assert cp.shift(1) == 1 and cp.next(1) == 0

    def test_single_star_element(self):
        cp = compile_pattern(spec_of(("X", price_predicate(comparison(PRICE, "<", PREV)), True)))
        assert cp.shift(1) == 1 and cp.next(1) == 0

    def test_describe_contains_arrays(self, example4_compiled):
        text = example4_compiled.describe()
        assert "shift: 1 1 1 3" in text
        assert "next:  0 1 2 1" in text
        assert "theta" in text and "phi" in text and "S:" in text


class TestInvariants:
    """Structural invariants every compiled plan must satisfy."""

    def _check(self, cp):
        for j in range(1, cp.m + 1):
            assert 1 <= cp.shift(j) <= j
            if cp.shift(j) == j:
                assert cp.next(j) == 0
            else:
                assert 1 <= cp.next(j) <= j - cp.shift(j) + 1

    def test_paper_patterns(self, example4_compiled, example9_compiled):
        self._check(example4_compiled)
        self._check(example9_compiled)

    def test_true_elements(self):
        cp = compile_pattern(
            spec_of(
                ("A", true_predicate(), False),
                ("B", price_predicate(comparison(PRICE, "<", 5)), False),
                ("C", true_predicate(), False),
            )
        )
        self._check(cp)

    def test_star_free_agreement_with_star_machinery(self, example4_pattern):
        """On a star-free pattern, the Section 5 graph machinery must not
        produce more aggressive shifts than the Section 4 arrays."""
        from repro.pattern.analysis import build_phi, build_theta
        from repro.pattern.star_graph import ImplicationGraph
        from repro.pattern.star_shift_next import compute_star_shift_next

        section4 = compile_pattern(example4_pattern)
        theta = build_theta(example4_pattern)
        phi = build_phi(example4_pattern)
        graph = ImplicationGraph(theta, phi, [False] * 4)
        section5 = compute_star_shift_next(graph)
        for j in range(1, 5):
            assert section5.shift[j] == section4.shift(j)
            # next may be one smaller (the graph walk stops at j - shift
            # where the S = 1 case reaches j - shift + 1), never bigger.
            assert section5.next_[j] <= section4.next(j)
