"""Cross-oracle checks: interval prover vs GSW-backed theta/phi.

On the single-variable constant-bound fragment the interval-set reduction
(Section 8 / [13]) is an *exact* decision procedure, so the theta entries
the GSW-based analysis produces must agree with interval inclusion /
disjointness on that fragment — a strong independent check of both
provers and of the matrix-building rules.
"""

import random

from repro.constraints.intervals import atoms_to_interval_set
from repro.constraints.terms import Variable
from repro.logic.tribool import FALSE, TRUE, UNKNOWN
from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.predicates import col, comparison, predicate
from tests.conftest import DOMAINS, PRICE

VAR = Variable("price@0")
OPS = ["<", "<=", ">", ">=", "=", "!="]


def random_band_predicate(rng):
    conditions = []
    for _ in range(rng.randint(1, 3)):
        conditions.append(comparison(PRICE, rng.choice(OPS), rng.randint(-5, 5)))
    return predicate(*conditions, domains=DOMAINS)


def interval_set_of(element_predicate):
    atoms = list(element_predicate.symbolic.disjuncts[0].atoms)
    return atoms_to_interval_set(atoms, VAR)


class TestThetaAgainstIntervals:
    def test_random_pairs(self):
        rng = random.Random(51)
        checked = {"1": 0, "0": 0, "U": 0}
        for _ in range(400):
            pj = random_band_predicate(rng)
            pk = random_band_predicate(rng)
            theta = build_theta([pk, pj])
            entry = theta[2, 1]
            sj = interval_set_of(pj)
            sk = interval_set_of(pk)
            if entry is TRUE:
                # p_j => p_k must hold as set inclusion (and p_j nonempty).
                assert not sj.is_empty
                assert sj.subset_of(sk)
                checked["1"] += 1
            elif entry is FALSE:
                assert sj.intersect(sk).is_empty
                checked["0"] += 1
            else:
                # U must be genuinely undecided: neither inclusion nor
                # disjointness (both exact on this fragment).
                assert not sj.subset_of(sk)
                assert not sj.intersect(sk).is_empty
                checked["U"] += 1
        # All three verdicts must actually occur in the sample.
        assert all(count > 10 for count in checked.values()), checked

    def test_phi_negative_precondition(self):
        """phi = 1 entries: complement(p_j) must sit inside p_k."""
        rng = random.Random(52)
        confirmed = 0
        for _ in range(400):
            pj = random_band_predicate(rng)
            pk = random_band_predicate(rng)
            phi = build_phi([pk, pj])
            if phi[2, 1] is TRUE:
                complement = interval_set_of(pj).complement()
                assert complement.subset_of(interval_set_of(pk))
                confirmed += 1
        assert confirmed > 5
