"""Implication-graph construction: arc rules, zero-node removal, reachability."""

import pytest

from repro.errors import PlanningError
from repro.logic.matrix import TriangularMatrix
from repro.pattern.star_graph import ImplicationGraph


def graph_of(theta_rows, phi_rows, stars, equivalent=frozenset()):
    theta = TriangularMatrix.from_rows(theta_rows)
    phi = TriangularMatrix.from_rows(phi_rows)
    return ImplicationGraph(theta, phi, stars, equivalent)


THETA3 = [["1"], ["U", "1"], ["U", "U", "1"]]
PHI3 = [["0"], ["U", "0"], ["U", "U", "0"]]


class TestValidation:
    def test_size_mismatch(self):
        with pytest.raises(PlanningError):
            ImplicationGraph(
                TriangularMatrix(2), TriangularMatrix(3), [False, False]
            )

    def test_star_count_mismatch(self):
        with pytest.raises(PlanningError):
            ImplicationGraph(TriangularMatrix(2), TriangularMatrix(2), [False])

    def test_failure_graph_bounds(self):
        g = graph_of(THETA3, PHI3, [True, True, True])
        with pytest.raises(PlanningError):
            g.failure_graph(1)
        with pytest.raises(PlanningError):
            g.failure_graph(4)


class TestArcRules:
    """One test per row of the paper's five-rule table (Section 5)."""

    def _arcs(self, stars, theta_rows=None, j=4, node=(2, 1), equivalent=frozenset()):
        size = len(stars)
        theta_rows = theta_rows or [
            ["U"] * k + ["1"] for k in range(size)
        ]
        phi_rows = [["U"] * k + ["0"] for k in range(size)]
        g = graph_of(theta_rows, phi_rows, stars, equivalent)
        return set(g.failure_graph(j).arcs[node])

    def test_rule1_star_star_unknown_three_arcs(self):
        # node (3,1): both starred, theta=U -> right (3,2), down (4,1), diag (4,2)
        arcs = self._arcs([True, True, True, True], node=(3, 1))
        assert arcs == {(3, 2), (4, 1), (4, 2)}

    def test_rule2_star_star_one_two_arcs(self):
        theta_rows = [["1"], ["U", "1"], ["1", "U", "1"], ["U", "U", "U", "1"]]
        arcs = self._arcs([True, True, True, True], theta_rows, node=(3, 1))
        assert arcs == {(4, 1), (4, 2)}

    def test_rule2_equivalent_diagonal_only(self):
        theta_rows = [["1"], ["U", "1"], ["1", "U", "1"], ["U", "U", "U", "1"]]
        arcs = self._arcs(
            [True, True, True, True],
            theta_rows,
            node=(3, 1),
            equivalent=frozenset({(3, 1)}),
        )
        assert arcs == {(4, 2)}

    def test_rule3_plain_plain_diagonal_only(self):
        arcs = self._arcs([False, False, False, False], node=(3, 1))
        assert arcs == {(4, 2)}

    def test_rule4_row_star_col_plain(self):
        arcs = self._arcs([False, False, True, False], node=(3, 1))
        assert arcs == {(3, 2), (4, 2)}

    def test_rule5_row_plain_col_star(self):
        arcs = self._arcs([True, False, False, False], node=(3, 1))
        assert arcs == {(4, 1), (4, 2)}

    def test_arcs_clipped_to_lower_triangle(self):
        # node (3,2) with a right arc candidate (3,3): on the diagonal,
        # must be dropped.
        arcs = self._arcs([False, True, True, False], node=(3, 2))
        assert (3, 3) not in arcs


class TestZeroNodeRemoval:
    def test_zero_theta_node_absent(self):
        theta_rows = [["1"], ["0", "1"], ["U", "U", "1"]]
        g = graph_of(theta_rows, PHI3, [True, True, True])
        failure = g.failure_graph(3)
        assert (2, 1) not in failure.values

    def test_arcs_into_zero_node_dropped(self):
        theta_rows = [["1"], ["U", "1"], ["0", "U", "1"]]
        phi_rows = [["0"], ["U", "0"], ["U", "U", "0"]]
        g = graph_of(theta_rows, phi_rows, [True, True, True])
        failure = g.failure_graph(3)
        # (3,1) is the phi row now (failure at 3), value U -> present;
        # but the theta value 0 case: check via j=3 base graph instead.
        base = g.base_values()
        assert str(base[(3, 1)]) == "0"

    def test_zero_phi_last_row_node_absent(self):
        phi_rows = [["0"], ["U", "0"], ["0", "U", "0"]]
        g = graph_of(THETA3, phi_rows, [True, True, True])
        failure = g.failure_graph(3)
        assert (3, 1) not in failure.values
        assert (3, 2) in failure.values


class TestReachability:
    def test_reverse_traversal(self):
        g = graph_of(THETA3, PHI3, [False, False, False])
        failure = g.failure_graph(3)
        reaching = failure.nodes_reaching_last_row()
        # Plain chain: (2,1) -diag-> (3,2); last-row nodes included.
        assert (2, 1) in reaching
        assert (3, 1) in reaching and (3, 2) in reaching

    def test_dead_end_not_reaching(self):
        phi_rows = [["0"], ["U", "0"], ["U", "0", "0"]]
        g = graph_of(THETA3, phi_rows, [False, False, False])
        failure = g.failure_graph(3)
        reaching = failure.nodes_reaching_last_row()
        # (2,1)'s only arc goes diagonally to (3,2), which is removed.
        assert (2, 1) not in reaching
        assert (3, 1) in reaching  # itself a last-row node

    def test_last_row_nodes(self):
        g = graph_of(THETA3, PHI3, [True, False, True])
        failure = g.failure_graph(3)
        assert set(failure.last_row_nodes()) == {(3, 1), (3, 2)}
