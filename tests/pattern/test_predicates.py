"""Element predicates: evaluation, symbolization, boundary semantics."""

import pytest

from repro.constraints.atoms import CategoricalAtom
from repro.pattern.predicates import (
    Attr,
    AttributeDomains,
    ComparisonCondition,
    ElementPredicate,
    EvalContext,
    LinearTerm,
    ResidualCondition,
    StringEqualityCondition,
    col,
    comparison,
    predicate,
    true_predicate,
)

PRICE = col("price")
PREV = PRICE.previous
DOMAINS = AttributeDomains.prices()


def ctx(prices, index, bindings=None):
    return EvalContext([{"price": float(p)} for p in prices], index, bindings)


class TestAttrAndTerms:
    def test_navigation_builders(self):
        assert PREV == Attr("price", -1)
        assert PRICE.next == Attr("price", 1)
        assert PREV.previous == Attr("price", -2)

    def test_variable_naming(self):
        assert PRICE.variable().name == "price@0"
        assert PREV.variable().name == "price@-1"

    def test_arithmetic_sugar(self):
        term = 1.15 * PRICE
        assert isinstance(term, LinearTerm)
        assert term.coefficient == pytest.approx(1.15)
        term = PRICE + 3
        assert term.constant == 3.0
        term = PRICE - 3
        assert term.constant == -3.0

    def test_linear_term_of(self):
        assert LinearTerm.of(5).constant == 5.0
        assert LinearTerm.of(PRICE).attr == PRICE
        with pytest.raises(Exception):
            LinearTerm.of("price")  # type: ignore[arg-type]


class TestEvaluation:
    def test_current_vs_previous(self):
        falling = predicate(comparison(PRICE, "<", PREV))
        assert falling.test(ctx([10, 8], 1))
        assert not falling.test(ctx([10, 12], 1))

    def test_previous_missing_at_first_tuple(self):
        falling = predicate(comparison(PRICE, "<", PREV))
        assert not falling.test(ctx([10, 8], 0))

    def test_next_missing_at_last_tuple(self):
        peeking = predicate(comparison(PRICE, "<", PRICE.next))
        assert peeking.test(ctx([10, 12], 0))
        assert not peeking.test(ctx([10, 12], 1))

    def test_constant_bound(self):
        band = predicate(comparison(40, "<", PRICE), comparison(PRICE, "<", 50))
        assert band.test(ctx([45], 0))
        assert not band.test(ctx([55], 0))

    def test_scaled_comparison(self):
        spike = predicate(comparison(PRICE, ">", 1.15 * PREV))
        assert spike.test(ctx([10, 11.6], 1))
        assert not spike.test(ctx([10, 11.4], 1))

    def test_true_predicate(self):
        assert true_predicate().test(ctx([1], 0))

    def test_string_condition(self):
        from repro.constraints.atoms import Op

        cond = StringEqualityCondition(Attr("name", 0), Op.EQ, "IBM")
        pred = ElementPredicate([cond])
        rows = [{"name": "IBM"}, {"name": "INTC"}]
        assert pred.test(EvalContext(rows, 0))
        assert not pred.test(EvalContext(rows, 1))

    def test_residual_receives_context(self):
        seen = {}

        def check(context):
            seen["index"] = context.index
            return True

        pred = ElementPredicate([ResidualCondition(check)])
        assert pred.test(ctx([1, 2], 1, {"X": (0, 0)}))
        assert seen["index"] == 1


class TestSymbolization:
    def test_fully_symbolic(self):
        pred = predicate(
            comparison(PRICE, "<", PREV), comparison(PRICE, "<", 50), domains=DOMAINS
        )
        assert not pred.has_residual
        assert len(pred.symbolic.disjuncts[0]) == 2

    def test_residual_flag(self):
        pred = predicate(
            comparison(PRICE, "<", 50),
            ResidualCondition(lambda _: True),
            domains=DOMAINS,
        )
        assert pred.has_residual
        # The symbolic part still carries the analyzable condition.
        assert len(pred.symbolic.disjuncts[0]) == 1

    def test_ratio_rewrite_only_with_positive_domain(self):
        cond = comparison(PRICE, "<", 0.98 * PREV)
        assert cond.symbolic_atoms(DOMAINS) is not None
        assert cond.symbolic_atoms(AttributeDomains.none()) is None

    def test_negative_ratio_not_rewritten(self):
        cond = comparison(PRICE, "<", -0.98 * PREV)
        assert cond.symbolic_atoms(DOMAINS) is None

    def test_same_coefficient_additive_form(self):
        cond = comparison(2 * PRICE, "<", (2 * PREV) + 6)
        atoms = cond.symbolic_atoms(DOMAINS)
        assert atoms is not None
        assert atoms[0].c == pytest.approx(3.0)  # offset divided by coefficient

    def test_negative_coefficient_flips_operator(self):
        cond = comparison(-1 * PRICE, "<", -50)
        (a,) = cond.symbolic_atoms(DOMAINS)
        assert a.op.value == ">"
        assert a.c == pytest.approx(50.0)

    def test_ground_comparison_folds(self):
        true_cond = comparison(1, "<", 2)
        (a,) = true_cond.symbolic_atoms(DOMAINS)
        assert a.is_tautology()
        false_cond = comparison(2, "<", 1)
        (a,) = false_cond.symbolic_atoms(DOMAINS)
        assert a.is_contradiction()

    def test_categorical_symbolization(self):
        from repro.constraints.atoms import Op

        cond = StringEqualityCondition(Attr("name", 0), Op.EQ, "IBM")
        (a,) = cond.symbolic_atoms(DOMAINS)
        assert isinstance(a, CategoricalAtom)


class TestPredicateProperties:
    def test_satisfiable(self):
        assert predicate(comparison(PRICE, "<", 50), domains=DOMAINS).satisfiable()
        dead = predicate(
            comparison(PRICE, "<", 40), comparison(PRICE, ">", 50), domains=DOMAINS
        )
        assert not dead.satisfiable()

    def test_tautology(self):
        assert true_predicate().is_tautology()
        assert not predicate(comparison(PRICE, "<", 50)).is_tautology()
        with_residual = ElementPredicate([ResidualCondition(lambda _: True)])
        assert not with_residual.is_tautology()

    def test_repr_mentions_conditions(self):
        pred = predicate(comparison(PRICE, "<", PREV), label="p1")
        assert "p1" in repr(pred) and "previous" in repr(pred)
