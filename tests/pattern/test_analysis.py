"""theta/phi construction rules, including residual conservatism."""

import pytest

from repro.logic.tribool import FALSE, TRUE, UNKNOWN
from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.predicates import (
    ElementPredicate,
    ResidualCondition,
    col,
    comparison,
    predicate,
    true_predicate,
)
from tests.conftest import DOMAINS, PRICE, PREV, price_predicate


def matrices(predicates):
    return build_theta(predicates), build_phi(predicates)


class TestThetaRules:
    def test_diagonal_is_one_for_satisfiable(self):
        p = price_predicate(comparison(PRICE, "<", 50))
        theta, _ = matrices([p, p])
        assert theta[1, 1] is TRUE

    def test_diagonal_is_zero_for_unsatisfiable(self):
        dead = price_predicate(comparison(PRICE, "<", 40), comparison(PRICE, ">", 50))
        theta, _ = matrices([dead])
        assert theta[1, 1] is FALSE

    def test_implication_gives_one(self):
        narrow = price_predicate(comparison(PRICE, ">", 40), comparison(PRICE, "<", 50))
        wide = price_predicate(comparison(PRICE, ">", 30))
        theta, _ = matrices([wide, narrow])
        assert theta[2, 1] is TRUE

    def test_contradiction_gives_zero(self):
        rises = price_predicate(comparison(PRICE, ">", PREV))
        falls = price_predicate(comparison(PRICE, "<", PREV))
        theta, _ = matrices([rises, falls])
        assert theta[2, 1] is FALSE

    def test_unrelated_gives_unknown(self):
        a = price_predicate(comparison(PRICE, ">", 40))
        b = price_predicate(comparison(PRICE, "<", PREV))
        theta, _ = matrices([a, b])
        assert theta[2, 1] is UNKNOWN

    def test_unsat_premise_gives_zero_not_one(self):
        """The paper's p_j !== F guard: an impossible element never
        produces a 1 entry (the 0 rule wins)."""
        dead = price_predicate(comparison(PRICE, "<", 40), comparison(PRICE, ">", 50))
        anything = price_predicate(comparison(PRICE, ">", 0))
        theta, _ = matrices([anything, dead])
        assert theta[2, 1] is FALSE

    def test_everything_implies_true_element(self):
        theta, _ = matrices([true_predicate(), price_predicate(comparison(PRICE, "<", 5))])
        assert theta[2, 1] is TRUE


class TestPhiRules:
    def test_negation_implies_gives_one(self):
        # NOT (price < 0.98 prev) is exactly price >= 0.98 prev.
        not_dropping = price_predicate(comparison(PRICE, ">=", 0.98 * PREV))
        dropping = price_predicate(comparison(PRICE, "<", 0.98 * PREV))
        _, phi = matrices([not_dropping, dropping])
        assert phi[2, 1] is TRUE

    def test_converse_implication_gives_zero(self):
        rises = price_predicate(comparison(PRICE, ">", PREV))
        rises_bounded = price_predicate(
            comparison(PRICE, ">", PREV), comparison(PRICE, "<", 52)
        )
        _, phi = matrices([rises_bounded, rises])
        # NOT p2 => NOT p1 since p1 => p2.
        assert phi[2, 1] is FALSE

    def test_tautology_guard(self):
        """phi against a tautological p_j may not use the 0 rule."""
        taut = true_predicate()
        other = price_predicate(comparison(PRICE, "<", 5))
        _, phi = matrices([other, taut])
        # NOT TRUE => anything, so phi = 1 (not 0 despite other => taut).
        assert phi[2, 1] is TRUE

    def test_diagonal(self):
        p = price_predicate(comparison(PRICE, "<", 50))
        _, phi = matrices([p])
        assert phi[1, 1] is FALSE
        _, phi = matrices([true_predicate()])
        assert phi[1, 1] is TRUE


class TestResidualConservatism:
    def test_residual_target_never_one_in_theta(self):
        premise = price_predicate(comparison(PRICE, ">", 40), comparison(PRICE, "<", 50))
        hidden = ElementPredicate(
            [comparison(PRICE, ">", 30), ResidualCondition(lambda _: False)],
            domains=DOMAINS,
        )
        theta, _ = matrices([hidden, premise])
        # Without the residual this entry would be 1; with it, U.
        assert theta[2, 1] is UNKNOWN

    def test_residual_premise_may_still_give_one(self):
        """Residuals strengthen the premise; implication stays sound."""
        narrow_hidden = ElementPredicate(
            [
                comparison(PRICE, ">", 40),
                comparison(PRICE, "<", 50),
                ResidualCondition(lambda _: True),
            ],
            domains=DOMAINS,
        )
        wide = price_predicate(comparison(PRICE, ">", 30))
        theta, _ = matrices([wide, narrow_hidden])
        assert theta[2, 1] is TRUE

    def test_residual_contradiction_still_zero(self):
        rises_hidden = ElementPredicate(
            [comparison(PRICE, ">", PREV), ResidualCondition(lambda _: True)],
            domains=DOMAINS,
        )
        falls = price_predicate(comparison(PRICE, "<", PREV))
        theta, _ = matrices([falls, rises_hidden])
        assert theta[2, 1] is FALSE

    def test_residual_blocks_phi_definite_values(self):
        hidden = ElementPredicate(
            [comparison(PRICE, ">=", 0.98 * PREV), ResidualCondition(lambda _: True)],
            domains=DOMAINS,
        )
        dropping = price_predicate(comparison(PRICE, "<", 0.98 * PREV))
        _, phi = matrices([hidden, dropping])
        assert phi[2, 1] is UNKNOWN


class TestShapes:
    def test_pattern_spec_accepted(self, example4_pattern):
        theta = build_theta(example4_pattern)
        assert theta.size == 4

    def test_sequence_of_predicates_accepted(self, example4_predicates):
        theta = build_theta(example4_predicates)
        assert theta.size == 4
