"""Span trees: nesting, budgets, and cross-process grafting."""

import pytest

from repro.obs import Span, Trace


class FakeClock:
    """Deterministic perf_counter: each read advances by ``step``."""

    def __init__(self, step: float = 0.25):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpanNesting:
    def test_with_blocks_nest(self):
        trace = Trace(clock=FakeClock())
        with trace.span("execute") as root:
            with trace.span("plan", cache="miss") as plan:
                pass
            with trace.span("scan"):
                with trace.span("cluster", partition="IBM"):
                    pass
        assert trace.root is root
        assert [child.name for child in root.children] == ["plan", "scan"]
        assert root.children[1].children[0].attrs["partition"] == "IBM"
        assert plan.attrs["cache"] == "miss"
        assert trace.span_count == 4

    def test_durations_close_on_exit(self):
        trace = Trace(clock=FakeClock(step=1.0))
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        assert trace.root.duration_s is not None
        assert trace.root.children[0].duration_s is not None
        # The outer span was open across the inner one's lifetime.
        assert trace.root.duration_s > trace.root.children[0].duration_s

    def test_annotate_after_close(self):
        trace = Trace(clock=FakeClock())
        with trace.span("scan") as span:
            pass
        span.annotate(rows=10, matches=2)
        assert span.attrs == {"rows": 10, "matches": 2}

    def test_find_and_walk(self):
        trace = Trace(clock=FakeClock())
        with trace.span("execute"):
            with trace.span("cluster", partition="a"):
                pass
            with trace.span("cluster", partition="b"):
                pass
        assert trace.find("cluster").attrs["partition"] == "a"
        assert len(trace.find_all("cluster")) == 2
        assert trace.find("missing") is None


class TestSpanBudget:
    def test_over_budget_spans_are_dropped_not_raised(self):
        trace = Trace(max_spans=2, clock=FakeClock())
        with trace.span("root"):
            with trace.span("kept"):
                pass
            with trace.span("dropped") as orphan:
                orphan.annotate(note="still annotatable")
        assert trace.span_count == 2
        assert trace.dropped == 1
        assert trace.find("dropped") is None

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="max_spans"):
            Trace(max_spans=0)


class TestAttach:
    def test_worker_payload_grafts_under_parent(self):
        trace = Trace(clock=FakeClock())
        payload = {
            "name": "unit",
            "duration_s": 0.5,
            "attrs": {"unit": 0},
            "children": [
                {
                    "name": "cluster",
                    "duration_s": 0.4,
                    "attrs": {"partition": 1, "rows": 100},
                    "children": [],
                }
            ],
        }
        with trace.span("parallel") as pool:
            pass
        grafted = trace.attach(pool, payload)
        assert grafted.name == "unit"
        assert grafted.start is None  # foreign clock origin
        assert grafted.duration_s == 0.5
        assert pool.children[0].children[0].attrs["rows"] == 100
        assert trace.span_count == 3

    def test_attach_respects_budget(self):
        trace = Trace(max_spans=1, clock=FakeClock())
        with trace.span("root"):
            pass
        assert trace.attach(trace.root, {"name": "unit"}) is None
        assert trace.dropped == 1

    def test_roundtrip_through_dict(self):
        span = Span("unit", {"unit": 3})
        span.duration_s = 1.5
        span.children.append(Span("cluster", {"rows": 7}))
        restored = Span.from_dict(span.to_dict())
        assert restored.to_dict() == span.to_dict()
