"""The slow-query log: threshold gating, JSON lines, never raising."""

import io
import json
import os
import threading

import pytest

from repro.obs import SlowQueryLog


class TestThreshold:
    def test_below_threshold_is_not_recorded(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_s=1.0)
        assert log.maybe_record(elapsed_s=0.5) is False
        assert stream.getvalue() == ""
        assert log.entries_written == 0

    def test_at_and_above_threshold_are_recorded(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_s=1.0)
        assert log.maybe_record(elapsed_s=1.0) is True
        assert log.maybe_record(elapsed_s=2.5) is True
        assert log.entries_written == 2

    def test_zero_threshold_records_everything(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_s=0.0)
        assert log.maybe_record(elapsed_s=0.0001) is True

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SlowQueryLog(io.StringIO(), threshold_s=-0.1)


class TestEntryShape:
    def test_json_line_fields(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_s=0.0)
        log.maybe_record(
            elapsed_s=1.5,
            sql="SELECT X.day FROM quote SEQUENCE BY day AS (X)",
            tenant="acme",
            matches=3,
            ok=True,
        )
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["elapsed_ms"] == 1500.0
        assert entry["threshold_ms"] == 0.0
        assert entry["sql"].startswith("SELECT X.day")
        assert entry["tenant"] == "acme"
        assert entry["matches"] == 3
        assert entry["ok"] is True
        # ISO-8601 UTC wall clock, for humans correlating with the world.
        assert entry["ts"].endswith("+00:00")

    def test_sql_is_truncated(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_s=0.0)
        log.maybe_record(elapsed_s=1.0, sql="x" * 2000)
        entry = json.loads(stream.getvalue())
        assert len(entry["sql"]) == 500

    def test_one_line_per_entry(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_s=0.0)
        for elapsed in (1.0, 2.0, 3.0):
            log.maybe_record(elapsed_s=elapsed)
        lines = stream.getvalue().splitlines()
        assert [json.loads(line)["elapsed_ms"] for line in lines] == [
            1000.0,
            2000.0,
            3000.0,
        ]


class TestSinks:
    def test_path_sink_appends(self, tmp_path):
        target = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(target), threshold_s=0.0)
        log.maybe_record(elapsed_s=1.0, tenant="a")
        log.maybe_record(elapsed_s=2.0, tenant="b")
        lines = target.read_text().splitlines()
        assert [json.loads(line)["tenant"] for line in lines] == ["a", "b"]
        assert log.entries_written == 2

    def test_bad_path_never_raises(self, tmp_path):
        log = SlowQueryLog(
            str(tmp_path / "no" / "such" / "dir" / "slow.jsonl"),
            threshold_s=0.0,
        )
        assert log.maybe_record(elapsed_s=1.0) is False
        assert log.write_errors == 1
        assert log.entries_written == 0

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        stream.close()
        log = SlowQueryLog(stream, threshold_s=0.0)
        assert log.maybe_record(elapsed_s=1.0) is False
        assert log.write_errors == 1

    def test_rotation_caps_the_log_and_keeps_one_generation(self, tmp_path):
        target = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(target), threshold_s=0.0, max_bytes=400)
        for index in range(20):
            log.maybe_record(elapsed_s=1.0, tenant=f"t{index}")
        assert log.rotations >= 1
        assert os.path.getsize(target) <= 400
        rotated = target.with_suffix(".jsonl.1")
        assert rotated.exists()
        # Rotation preserves whole lines in both generations, and the
        # rotated file holds strictly older entries than the live one.
        old = [
            json.loads(line)["tenant"]
            for line in rotated.read_text().splitlines()
        ]
        new = [
            json.loads(line)["tenant"]
            for line in target.read_text().splitlines()
        ]
        assert old and new
        assert old[-1] == f"t{19 - len(new)}"
        assert new[-1] == "t19"  # the newest entry always lands live
        assert log.entries_written == 20

    def test_rotated_path_property(self, tmp_path):
        target = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(target), threshold_s=0.0, max_bytes=100)
        assert log.rotated_path == str(target) + ".1"

    def test_no_rotation_without_max_bytes(self, tmp_path):
        target = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(target), threshold_s=0.0)
        for _ in range(50):
            log.maybe_record(elapsed_s=1.0)
        assert log.rotations == 0
        assert not (tmp_path / "slow.jsonl.1").exists()

    def test_entry_larger_than_cap_still_lands(self, tmp_path):
        target = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(target), threshold_s=0.0, max_bytes=10)
        assert log.maybe_record(elapsed_s=1.0) is True
        assert log.maybe_record(elapsed_s=2.0) is True
        assert log.entries_written == 2

    def test_max_bytes_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(io.StringIO(), threshold_s=0.0, max_bytes=0)

    def test_rotation_failure_never_raises(self, tmp_path, monkeypatch):
        target = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(target), threshold_s=0.0, max_bytes=60)

        def broken_replace(src, dst):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(os, "replace", broken_replace)
        for _ in range(10):
            assert log.maybe_record(elapsed_s=1.0) is True
        assert log.rotations == 0

    def test_concurrent_writers_emit_whole_lines(self, tmp_path):
        target = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(target), threshold_s=0.0)

        def spin(tenant):
            for _ in range(50):
                log.maybe_record(elapsed_s=1.0, tenant=tenant)

        threads = [
            threading.Thread(target=spin, args=(name,))
            for name in ("a", "b", "c", "d")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = target.read_text().splitlines()
        assert len(lines) == 200
        assert all(json.loads(line)["tenant"] in "abcd" for line in lines)
        assert log.entries_written == 200
