"""EXPLAIN ANALYZE profiles: traced runs change nothing but gain a tree."""

import pytest

from repro.data.djia import djia_table
from repro.data.quotes import quote_table
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.obs import MetricsRegistry, Trace
from repro.pattern.predicates import AttributeDomains

CLUSTER_QUERY = (
    "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) "
    "WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price"
)


def _executor(**kwargs) -> Executor:
    return Executor(
        Catalog([djia_table(), quote_table()]),
        domains=AttributeDomains.prices(),
        **kwargs,
    )


class TestTracedIdentity:
    def test_serial_traced_rows_byte_identical(self):
        executor = _executor()
        untraced = executor.execute(EXAMPLE_10)
        traced = executor.execute(EXAMPLE_10, trace=Trace())
        assert traced.rows == untraced.rows
        assert traced.columns == untraced.columns
        assert untraced.profile is None
        assert traced.profile is not None

    def test_parallel_traced_rows_byte_identical(self):
        executor = _executor(workers=2, parallel_mode="thread")
        untraced = executor.execute(CLUSTER_QUERY)
        traced = executor.execute(CLUSTER_QUERY, trace=Trace())
        assert traced.rows == untraced.rows
        assert untraced.profile is None
        assert traced.profile is not None

    def test_profile_counters_agree_with_report(self):
        executor = _executor()
        trace = Trace()
        result, report = executor.execute_with_report(EXAMPLE_10, trace=trace)
        profile = result.profile
        assert profile.matches == report.matches
        assert profile.matcher == report.matcher
        assert profile.rows_scanned == report.rows_scanned
        assert profile.predicate_tests == report.predicate_tests
        assert profile.wall_s is not None and profile.wall_s > 0


class TestSerialSpanTree:
    def test_operator_tree_shape(self):
        executor = _executor()
        trace = Trace()
        result = executor.execute(EXAMPLE_10, trace=trace)
        root = trace.root
        assert root.name == "execute"
        assert root.attrs["mode"] == "serial"
        assert [child.name for child in root.children] == ["plan", "scan"]
        scan = trace.find("scan")
        assert scan.attrs["rows_scanned"] == result.profile.rows_scanned
        assert scan.attrs["skips"] > 0  # Example 10 applies shift/next
        clusters = trace.find_all("cluster")
        assert len(clusters) == 1
        assert clusters[0].attrs["partition"] == "(all)"
        assert clusters[0].attrs["matches"] == result.profile.matches

    def test_plan_span_records_cache_hit_and_miss(self):
        executor = _executor()
        miss_trace = Trace()
        executor.execute(EXAMPLE_10, trace=miss_trace)
        hit_trace = Trace()
        executor.execute(EXAMPLE_10, trace=hit_trace)
        assert miss_trace.find("plan").attrs["cache"] == "miss"
        assert hit_trace.find("plan").attrs["cache"] == "hit"

    def test_cluster_spans_carry_partition_labels(self):
        executor = _executor()
        trace = Trace()
        executor.execute(CLUSTER_QUERY, trace=trace)
        partitions = {
            span.attrs["partition"] for span in trace.find_all("cluster")
        }
        assert "IBM" in partitions


class TestParallelSpanTree:
    def test_worker_unit_spans_are_grafted(self):
        executor = _executor(workers=2, parallel_mode="thread")
        trace = Trace()
        executor.execute(CLUSTER_QUERY, trace=trace)
        root = trace.root
        assert root.attrs["mode"] == "parallel"
        pool = trace.find("parallel")
        assert pool is not None
        assert pool.attrs["workers"] == 2
        units = trace.find_all("unit")
        assert units, "worker spans must be serialized back and attached"
        clusters = trace.find_all("cluster")
        assert all(span.duration_s is not None for span in clusters)

    def test_parallel_profile_matches_serial_counters(self):
        serial = _executor()
        parallel = _executor(workers=2, parallel_mode="thread")
        serial_trace, parallel_trace = Trace(), Trace()
        serial_result = serial.execute(CLUSTER_QUERY, trace=serial_trace)
        parallel_result = parallel.execute(CLUSTER_QUERY, trace=parallel_trace)
        assert parallel_result.rows == serial_result.rows
        assert (
            parallel_result.profile.matches == serial_result.profile.matches
        )
        assert (
            parallel_result.profile.predicate_tests
            == serial_result.profile.predicate_tests
        )


class TestRender:
    def test_render_has_header_and_connectors(self):
        executor = _executor()
        trace = Trace()
        result = executor.execute(EXAMPLE_10, trace=trace)
        rendered = result.profile.render()
        assert rendered.startswith("Query Profile")
        assert "matcher=ops" in rendered
        assert "execute" in rendered and "scan" in rendered
        assert "└─" in rendered or "├─" in rendered
        assert "cache=miss" in rendered

    def test_to_dict_is_json_shaped(self):
        import json

        executor = _executor()
        trace = Trace()
        result = executor.execute(EXAMPLE_10, trace=trace)
        payload = json.loads(json.dumps(result.profile.to_dict()))
        assert payload["matches"] == result.profile.matches
        assert payload["trace"]["spans"][0]["name"] == "execute"


class TestPlanCacheCounters:
    def test_executor_counters_back_onto_registry(self):
        registry = MetricsRegistry()
        executor = _executor(metrics=registry)
        executor.execute(EXAMPLE_10)
        executor.execute(EXAMPLE_10)
        assert executor.plan_cache_misses == 1
        assert executor.plan_cache_hits == 1
        assert (
            registry.get("repro_plan_cache_hits_total").value == 1
        )
        assert registry.get("repro_queries_total").value == 2
        assert registry.get("repro_query_seconds").count == 2

    def test_diagnostics_surface_plan_cache(self):
        executor = _executor()
        first = executor.execute(EXAMPLE_10)
        second = executor.execute(EXAMPLE_10)
        assert first.diagnostics.plan_cache_misses == 1
        assert first.diagnostics.plan_cache_hits == 0
        assert second.diagnostics.plan_cache_hits == 1
        counters = second.diagnostics.to_dict()["counters"]
        assert counters["plan_cache_hits"] == 1
        assert counters["plan_cache_misses"] == 0
