"""The metrics registry: counters, gauges, histograms, exposition."""

import json
import threading
from pathlib import Path

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry

GOLDEN = Path(__file__).parent / "golden_metrics.prom"


def golden_registry() -> MetricsRegistry:
    """A registry with one of everything, filled deterministically."""
    registry = MetricsRegistry()
    hits = registry.counter("repro_plan_cache_hits_total", "Plan cache hits.")
    hits.inc()
    hits.inc(2)
    rejections = registry.counter(
        "repro_serve_rejections_total",
        "Rejections by tenant and code.",
        labelnames=("tenant", "code"),
    )
    rejections.labels(tenant="acme", code="backpressure").inc(3)
    rejections.labels(tenant="acme", code="deadline").inc()
    rejections.labels(tenant="beta", code="quota_exhausted").inc()
    inflight = registry.gauge("repro_serve_inflight", "Requests in flight.")
    inflight.set(4)
    inflight.dec()
    seconds = registry.histogram(
        "repro_query_seconds",
        "Query wall time.",
        buckets=(0.01, 0.1, 1.0),
    )
    for value in (0.005, 0.02, 0.02, 0.5, 3.0):
        seconds.observe(value)
    return registry


class TestCounters:
    def test_unlabeled_counts(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labeled_children_are_independent(self):
        family = MetricsRegistry().counter("c_total", labelnames=("code",))
        family.labels(code="a").inc()
        family.labels(code="b").inc(2)
        assert family.labels(code="a").value == 1
        assert family.labels(code="b").value == 2

    def test_labeled_family_rejects_direct_inc(self):
        family = MetricsRegistry().counter("c_total", labelnames=("code",))
        with pytest.raises(ValueError, match="call .labels"):
            family.inc()

    def test_wrong_label_names_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("code",))
        with pytest.raises(ValueError, match="expected labels"):
            family.labels(tenant="x")


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("x_total", labelnames=("b",))

    def test_bad_metric_name_raises(self):
        with pytest.raises(ValueError, match="bad metric name"):
            MetricsRegistry().counter("bad name")

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))

    def test_concurrent_increments_are_not_lost(self):
        counter = MetricsRegistry().counter("c_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.02, 0.02, 0.5, 3.0):
            histogram.observe(value)
        child = histogram.labels() if histogram.labelnames else histogram
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(3.545)

    def test_default_buckets_cover_subsecond_to_10s(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 10.0


class TestExposition:
    def test_matches_golden_file(self):
        exposed = golden_registry().expose()
        assert exposed == GOLDEN.read_text()

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("q",))
        family.labels(q='say "hi"\nplease\\now').inc()
        exposed = registry.expose()
        assert r'q="say \"hi\"\nplease\\now"' in exposed

    def test_empty_registry_exposes_empty(self):
        assert MetricsRegistry().expose() == ""

    def test_snapshot_is_json_ready(self):
        snapshot = golden_registry().snapshot()
        rehydrated = json.loads(json.dumps(snapshot))
        hits = rehydrated["repro_plan_cache_hits_total"]
        assert hits["type"] == "counter"
        assert hits["samples"][0]["value"] == 3
        seconds = rehydrated["repro_query_seconds"]
        assert seconds["samples"][0]["count"] == 5
        assert seconds["samples"][0]["buckets"]["+Inf"] == 5
