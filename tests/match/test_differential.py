"""Property-based differential testing: all matchers, identical matches.

This is the load-bearing soundness suite: hypothesis generates random
patterns (random predicates, random star flags) and random run-structured
price sequences; the naive, OPS, and (on exclusive-adjacent patterns)
backtracking matchers must produce byte-identical match lists, with and
without the equivalence refinement.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.match.backtracking import BacktrackingMatcher
from repro.match.base import Instrumentation
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import comparison
from repro.pattern.spec import PatternElement, PatternSpec
from tests.conftest import PREV, PRICE, price_predicate


def _predicate(kind, bound):
    if kind == "rise":
        return price_predicate(comparison(PRICE, ">", PREV))
    if kind == "fall":
        return price_predicate(comparison(PRICE, "<", PREV))
    if kind == "below":
        return price_predicate(comparison(PRICE, "<", bound))
    if kind == "above":
        return price_predicate(comparison(PRICE, ">", bound))
    if kind == "drop2pct":
        return price_predicate(comparison(PRICE, "<", 0.98 * PREV))
    if kind == "norise2pct":
        return price_predicate(comparison(PRICE, "<=", 1.02 * PREV))
    if kind == "band":
        return price_predicate(
            comparison(PRICE, ">", bound - 10), comparison(PRICE, "<", bound + 10)
        )
    raise AssertionError(kind)


element_kinds = st.sampled_from(
    ["rise", "fall", "below", "above", "drop2pct", "norise2pct", "band"]
)

patterns = st.lists(
    st.tuples(element_kinds, st.integers(30, 70), st.booleans()),
    min_size=1,
    max_size=6,
)

# Run-structured price paths: sequences of bounded random steps, so rises
# and falls cluster into runs like real series.
price_paths = st.lists(
    st.sampled_from([-6.0, -3.0, -1.5, -0.5, 0.5, 1.5, 3.0, 6.0]),
    min_size=0,
    max_size=80,
).map(
    lambda steps: [
        {"price": p}
        for p in _accumulate(steps)
    ]
)


def _accumulate(steps):
    prices = []
    value = 50.0
    for step in steps:
        value = max(10.0, min(90.0, value + step))
        prices.append(value)
    return prices


def _build(pattern_spec):
    elements = [
        PatternElement(f"V{i}", _predicate(kind, bound), star=star)
        for i, (kind, bound, star) in enumerate(pattern_spec)
    ]
    return PatternSpec(elements)


@settings(max_examples=300, deadline=None)
@given(patterns, price_paths)
def test_ops_star_matches_naive(pattern_spec, rows):
    spec = _build(pattern_spec)
    cp = compile_pattern(spec)
    assert OpsStarMatcher().find_matches(rows, cp) == NaiveMatcher().find_matches(
        rows, cp
    )


@settings(max_examples=150, deadline=None)
@given(patterns, price_paths)
def test_equivalence_refinement_is_transparent(pattern_spec, rows):
    spec = _build(pattern_spec)
    refined = compile_pattern(spec, use_equivalence=True)
    literal = compile_pattern(spec, use_equivalence=False)
    assert OpsStarMatcher().find_matches(rows, refined) == OpsStarMatcher().find_matches(
        rows, literal
    )


@settings(max_examples=150, deadline=None)
@given(patterns, price_paths)
def test_paper_literal_ops_matches_naive_nonstar(pattern_spec, rows):
    spec = _build([(k, b, False) for k, b, _ in pattern_spec])
    cp = compile_pattern(spec)
    assert OpsMatcher().find_matches(rows, cp) == NaiveMatcher().find_matches(rows, cp)


def _backtrack_depth(trace):
    """Total backward movement of the input cursor over a test trace."""
    total = 0
    for (previous, _), (current, _) in zip(trace, trace[1:]):
        if current < previous:
            total += previous - current
    return total


@settings(max_examples=150, deadline=None)
@given(patterns, price_paths)
def test_ops_backtracks_no_deeper_than_naive(pattern_spec, rows):
    """Figure 5's claim: OPS backtracking episodes are 'less frequent and
    less deep' than naive's (unlike KMP, OPS may revisit input — but only
    within the current attempt, and never more than the naive scan)."""
    spec = _build(pattern_spec)
    cp = compile_pattern(spec)
    naive_inst = Instrumentation(record_trace=True)
    ops_inst = Instrumentation(record_trace=True)
    NaiveMatcher().find_matches(rows, cp, naive_inst)
    OpsStarMatcher().find_matches(rows, cp, ops_inst)
    assert _backtrack_depth(ops_inst.trace) <= _backtrack_depth(naive_inst.trace)


@settings(max_examples=150, deadline=None)
@given(patterns, price_paths)
def test_ops_test_count_never_exceeds_naive_by_pattern_length(pattern_spec, rows):
    """OPS may pay a bounded warm-up but must not lose asymptotically:
    allow a slack of m per match attempt boundary, in practice OPS <=
    naive on every generated case; assert the strong form and let
    hypothesis hunt for violations."""
    spec = _build(pattern_spec)
    cp = compile_pattern(spec)
    naive_inst, ops_inst = Instrumentation(), Instrumentation()
    NaiveMatcher().find_matches(rows, cp, naive_inst)
    OpsStarMatcher().find_matches(rows, cp, ops_inst)
    assert ops_inst.tests <= naive_inst.tests


@settings(max_examples=100, deadline=None)
@given(patterns, price_paths)
def test_matches_are_well_formed(pattern_spec, rows):
    """Structural invariants of every reported match."""
    spec = _build(pattern_spec)
    cp = compile_pattern(spec)
    matches = OpsStarMatcher().find_matches(rows, cp)
    previous_end = -1
    for match in matches:
        assert match.start > previous_end  # non-overlapping, ordered
        previous_end = match.end
        assert len(match.spans) == cp.m
        cursor = match.start
        for span, element in zip(match.spans, spec.elements):
            assert span.start == cursor
            assert span.length >= 1
            if not element.star:
                assert span.length == 1
            cursor = span.end + 1
        assert cursor - 1 == match.end


@settings(max_examples=100, deadline=None)
@given(patterns, price_paths)
def test_every_match_actually_satisfies_predicates(pattern_spec, rows):
    """Re-verify each reported match against the raw predicates."""
    from repro.pattern.predicates import EvalContext

    spec = _build(pattern_spec)
    cp = compile_pattern(spec)
    for match in OpsStarMatcher().find_matches(rows, cp):
        bindings = {
            name: (span.start, span.end) for name, span in match.bindings().items()
        }
        for span, element in zip(match.spans, spec.elements):
            for index in range(span.start, span.end + 1):
                assert element.predicate.test(EvalContext(rows, index, bindings))
