"""Forward/reverse search and the Section 8 direction heuristic."""

import pytest

from repro.errors import PlanningError
from repro.match.base import Instrumentation, Span
from repro.match.direction import (
    DirectionScore,
    ReverseMatcher,
    choose_direction,
    direction_scores,
    reverse_pattern,
)
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import ResidualCondition, ElementPredicate, comparison
from repro.pattern.spec import PatternElement, PatternSpec
from tests.conftest import DOMAINS, PREV, PRICE, price_predicate, price_rows


def compiled(*defs):
    return compile_pattern(
        PatternSpec([PatternElement(n, p, star=s) for n, p, s in defs])
    )


RISE = price_predicate(comparison(PRICE, ">", PREV))
FALL = price_predicate(comparison(PRICE, "<", PREV))
LOW = price_predicate(comparison(PRICE, "<", 10))


class TestReversePattern:
    def test_order_reversed_offsets_negated(self):
        spec = PatternSpec(
            [PatternElement("A", RISE), PatternElement("B", LOW)]
        )
        reversed_spec = reverse_pattern(spec)
        assert reversed_spec.names == ("B", "A")
        # A's "price > price.previous" becomes "price > price.next".
        condition = reversed_spec.elements[1].predicate.conditions[0]
        offsets = {
            term.attr.offset
            for term in (condition.left, condition.right)
            if term.attr is not None
        }
        assert offsets == {0, 1}

    def test_star_flags_preserved(self):
        spec = PatternSpec(
            [PatternElement("A", RISE, star=True), PatternElement("B", LOW)]
        )
        assert [e.star for e in reverse_pattern(spec)] == [False, True]

    def test_double_reverse_is_identity_semantically(self):
        spec = PatternSpec([PatternElement("A", RISE), PatternElement("B", FALL)])
        twice = reverse_pattern(reverse_pattern(spec))
        assert twice.names == spec.names
        cp1, cp2 = compile_pattern(spec), compile_pattern(twice)
        rows = price_rows(10, 12, 9, 13, 8)
        assert OpsStarMatcher().find_matches(rows, cp1) == OpsStarMatcher().find_matches(
            rows, cp2
        )

    def test_residual_condition_refuses_reversal(self):
        spec = PatternSpec(
            [
                PatternElement(
                    "A", ElementPredicate([ResidualCondition(lambda _: True)])
                )
            ]
        )
        with pytest.raises(PlanningError):
            reverse_pattern(spec)


class TestReverseMatcher:
    def test_matches_mapped_back_to_forward_coordinates(self):
        cp = compiled(("A", RISE, False), ("B", FALL, False))
        rows = price_rows(10, 12, 9, 11, 8)
        forward = NaiveMatcher().find_matches(rows, cp)
        backward = ReverseMatcher().find_matches(rows, cp)
        assert [(m.start, m.end) for m in backward] == [
            (m.start, m.end) for m in forward
        ]
        assert backward[0].span_of("A") == forward[0].span_of("A")

    def test_star_spans_mapped(self):
        cp = compiled(("A", RISE, True), ("B", FALL, False))
        rows = price_rows(10, 11, 12, 9)
        (backward,) = ReverseMatcher().find_matches(rows, cp)
        assert backward.span_of("A") == Span(1, 2)
        assert backward.span_of("B") == Span(3, 3)

    def test_names_order_restored(self):
        cp = compiled(("A", RISE, False), ("B", FALL, False))
        rows = price_rows(10, 12, 9)
        (match,) = ReverseMatcher().find_matches(rows, cp)
        assert match.names == ("A", "B")


class TestHeuristic:
    def test_score_weighs_shift_over_next(self):
        assert DirectionScore(3.0, 1.0).value > DirectionScore(1.0, 3.0).value

    def test_scores_computed_for_both_directions(self):
        spec = PatternSpec([PatternElement("A", RISE), PatternElement("B", LOW)])
        forward = compile_pattern(spec)
        backward = compile_pattern(reverse_pattern(spec))
        fwd, bwd = direction_scores(forward, backward)
        assert fwd.mean_shift >= 1.0 and bwd.mean_shift >= 1.0

    def test_choose_direction_returns_plan(self):
        spec = PatternSpec([PatternElement("A", RISE), PatternElement("B", FALL)])
        direction, plan = choose_direction(spec)
        assert direction in ("forward", "backward")
        assert plan.m == 2

    def test_asymmetric_pattern_prefers_selective_end_first(self):
        """A rare final element makes the reverse direction anchor on it;
        the heuristic should at least evaluate both without error and the
        reverse scan should do no more tests than forward on data where
        the rare element never occurs early."""
        spec = PatternSpec(
            [
                PatternElement("A", RISE, star=True),
                PatternElement("B", FALL, star=True),
                PatternElement("S", LOW),
            ]
        )
        direction, plan = choose_direction(spec)
        assert direction in ("forward", "backward")

    def test_residual_pattern_falls_back_to_forward(self):
        spec = PatternSpec(
            [
                PatternElement(
                    "A", ElementPredicate([ResidualCondition(lambda _: True)])
                ),
                PatternElement("B", LOW),
            ]
        )
        direction, plan = choose_direction(spec)
        assert direction == "forward"
