"""OPS specializes exactly to KMP on constant-equality patterns.

Section 3's claim, made executable: for patterns of equality-with-constant
predicates (Example 3's shape), the OPS machinery must not merely
approximate KMP — on match-free inputs it performs the *identical number
of comparisons* (overlap-handling after a success is the one place the
two legitimately differ: KMP reports overlapping occurrences, SQL-TS
semantics is non-overlapping).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import constant_pattern_spec
from repro.match.base import Instrumentation
from repro.match.ops_star import OpsStarMatcher
from repro.match.text import TextStats, kmp_search
from repro.pattern.compiler import compile_pattern


def _run_both(pattern: str, text: str):
    stats = TextStats()
    occurrences = kmp_search(text, pattern, stats)
    plan = compile_pattern(
        constant_pattern_spec([float(ord(ch)) for ch in pattern])
    )
    inst = Instrumentation()
    matches = OpsStarMatcher().find_matches(
        [{"price": float(ord(ch))} for ch in text], plan, inst
    )
    return occurrences, stats.comparisons, matches, inst.tests


@settings(max_examples=300, deadline=None)
@given(
    st.text(alphabet="ab", min_size=2, max_size=6),
    st.text(alphabet="ab", max_size=60),
)
def test_identical_comparison_counts_when_match_free(pattern, text):
    occurrences, kmp_comparisons, matches, ops_tests = _run_both(pattern, text)
    if not occurrences and not matches:
        assert kmp_comparisons == ops_tests


@settings(max_examples=300, deadline=None)
@given(
    st.text(alphabet="abc", min_size=1, max_size=5),
    st.text(alphabet="abc", max_size=60),
)
def test_occurrence_sets_related(pattern, text):
    """OPS finds exactly KMP's occurrences filtered to non-overlapping,
    leftmost-first."""
    occurrences, _, matches, _ = _run_both(pattern, text)
    expected = []
    cursor = -1
    for start in occurrences:
        if start > cursor:
            expected.append(start)
            cursor = start + len(pattern) - 1
    assert [match.start for match in matches] == expected


def test_worked_example_from_section31():
    """The paper's own text/pattern pair."""
    text = "babcbabcabcaabcabcabcacabc"
    pattern = "abcabcacab"
    occurrences, kmp_comparisons, matches, ops_tests = _run_both(pattern, text)
    assert [match.start for match in matches] == occurrences == [
        text.index(pattern)
    ]
    # One (non-overlapping) match: post-success continuation differs, so
    # counts may differ by at most the pattern length.
    assert abs(kmp_comparisons - ops_tests) <= len(pattern)


def test_large_random_corpus_equality():
    rng = random.Random(11)
    checked = 0
    for _ in range(150):
        pattern = "".join(rng.choice("ab") for _ in range(rng.randint(2, 7)))
        text = "".join(rng.choice("ab") for _ in range(rng.randint(0, 120)))
        occurrences, kmp_comparisons, matches, ops_tests = _run_both(pattern, text)
        if not occurrences and not matches:
            checked += 1
            assert kmp_comparisons == ops_tests
    assert checked > 20
