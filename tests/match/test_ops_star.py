"""The unified OPS runtime: agreement with naive, counts, Section 5 example."""

from repro.match.base import Instrumentation, Span
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.spec import PatternElement, PatternSpec
from repro.pattern.predicates import comparison
from tests.conftest import PREV, PRICE, price_predicate, price_rows


def compiled(*defs, use_equivalence=True):
    return compile_pattern(
        PatternSpec([PatternElement(n, p, star=s) for n, p, s in defs]),
        use_equivalence=use_equivalence,
    )


RISE = price_predicate(comparison(PRICE, ">", PREV), label="rise")
FALL = price_predicate(comparison(PRICE, "<", PREV), label="fall")


class TestSection5CounterExample:
    """The paper's count illustration: prices
    20 21 23 24 22 20 18 15 14 18 21 against (*rise, *fall, *rise)
    give count(1)=4, count(2)=9, count(3)=11."""

    ROWS = price_rows(20, 21, 23, 24, 22, 20, 18, 15, 14, 18, 21)

    def test_counts_via_spans(self):
        cp = compiled(("X", RISE, True), ("Y", FALL, True), ("Z", RISE, True))
        (match,) = OpsStarMatcher().find_matches(self.ROWS, cp)
        spans = match.bindings()
        # count(j) is cumulative consumed input; the match starts at index 1
        # (position 0 has no previous), so count(1) = 4 means X covers
        # positions 1..4 minus... the paper counts from the sequence start:
        # X consumes 3 rises + the anchor semantics differ by the leading
        # tuple; spans encode the same boundaries.
        assert spans["X"] == Span(1, 3)
        assert spans["Y"] == Span(4, 8)
        assert spans["Z"] == Span(9, 10)
        # The paper's cumulative counts 4, 9, 11 measure tuples from the
        # sequence start through each element's run end — the anchor tuple
        # at position 0 (whose `previous` does not exist) is included in
        # the paper's counting convention, so count(j) = span.end + 1.
        assert spans["X"].end + 1 == 4
        assert spans["Y"].end + 1 == 9
        assert spans["Z"].end + 1 == 11

    def test_agrees_with_naive(self):
        cp = compiled(("X", RISE, True), ("Y", FALL, True), ("Z", RISE, True))
        assert OpsStarMatcher().find_matches(self.ROWS, cp) == NaiveMatcher().find_matches(
            self.ROWS, cp
        )


class TestMismatchHandling:
    def test_next_zero_restarts_past_failed_tuple(self):
        # (fall, rise): phi analysis proves a tuple failing "fall"... is a
        # rise-or-flat, which does not determine "fall" -> shift/next from
        # the matrices; just assert agreement and span correctness.
        cp = compiled(("A", FALL, False), ("B", RISE, False))
        rows = price_rows(10, 9, 11, 8, 12)
        matches = OpsStarMatcher().find_matches(rows, cp)
        assert [(m.start, m.end) for m in matches] == [(1, 2), (3, 4)]

    def test_full_skip_case(self):
        """A failure whose phi = 1 lets OPS skip re-testing the failed
        tuple against element 1 (the steady state of the double-bottom)."""
        not_drop = price_predicate(comparison(PRICE, ">=", 0.98 * PREV))
        drop = price_predicate(comparison(PRICE, "<", 0.98 * PREV))
        cp = compiled(("X", not_drop, False), ("Y", drop, True))
        rows = price_rows(*[100 + i * 0.1 for i in range(50)])  # never drops
        inst = Instrumentation()
        assert OpsStarMatcher().find_matches(rows, cp, inst) == []
        # Steady state approx one test per tuple (vs two for naive).
        naive_inst = Instrumentation()
        NaiveMatcher().find_matches(rows, cp, naive_inst)
        assert inst.tests < naive_inst.tests
        assert inst.tests <= len(rows) + cp.m

    def test_counts_rebased_after_shift(self):
        """After a mismatch deep in a star pattern, the inherited spans
        must still describe the new attempt correctly."""
        low = price_predicate(comparison(PRICE, "<", 30))
        cp = compiled(("A", RISE, True), ("B", FALL, True), ("S", low, False))
        # rise 51..53 run, fall 47,46,25 run, then 28 breaks the fall and
        # satisfies price < 30 -> S binds the run-breaking tuple.
        rows = price_rows(50, 51, 52, 49, 48, 51, 53, 47, 46, 25, 28)
        ops = OpsStarMatcher().find_matches(rows, cp)
        naive = NaiveMatcher().find_matches(rows, cp)
        assert ops == naive
        (match,) = ops
        assert match.span_of("S") == Span(10, 10)
        assert match.span_of("B") == Span(7, 9)


class TestTrailingEdgeCases:
    def test_trailing_star_flush(self):
        cp = compiled(("A", FALL, False), ("B", RISE, True))
        rows = price_rows(10, 9, 11, 12, 13)
        (match,) = OpsStarMatcher().find_matches(rows, cp)
        assert match.span_of("B") == Span(2, 4)

    def test_input_exhausted_mid_pattern(self):
        cp = compiled(("A", FALL, False), ("B", RISE, True), ("C", FALL, False))
        rows = price_rows(10, 9, 11, 12)
        assert OpsStarMatcher().find_matches(rows, cp) == []

    def test_empty_input(self):
        cp = compiled(("A", FALL, False))
        assert OpsStarMatcher().find_matches([], cp) == []

    def test_match_at_very_end(self):
        cp = compiled(("A", FALL, False))
        matches = OpsStarMatcher().find_matches(price_rows(10, 11, 9), cp)
        assert [(m.start, m.end) for m in matches] == [(2, 2)]


class TestAgreementOnPaperPatterns:
    def test_example4_figure5_sequence(self, example4_compiled):
        from repro.data.workloads import FIGURE5_SEQUENCE

        rows = price_rows(*FIGURE5_SEQUENCE)
        assert OpsStarMatcher().find_matches(
            rows, example4_compiled
        ) == NaiveMatcher().find_matches(rows, example4_compiled)

    def test_example9_on_band_data(self, example9_compiled, example9_refined):
        import random

        rng = random.Random(11)
        rows = []
        value = 33.0
        for _ in range(300):
            value = max(22.0, min(44.0, value + rng.choice([-5, -2, -1, 1, 2, 5])))
            rows.append({"price": value})
        expected = NaiveMatcher().find_matches(rows, example9_compiled)
        assert OpsStarMatcher().find_matches(rows, example9_compiled) == expected
        assert OpsStarMatcher().find_matches(rows, example9_refined) == expected

    def test_ops_never_slower_than_naive_on_paper_patterns(
        self, example4_compiled, example9_refined
    ):
        import random

        rng = random.Random(13)
        rows = []
        value = 40.0
        for _ in range(500):
            value = max(20.0, min(60.0, value + rng.choice([-5, -2, -1, 1, 2, 5])))
            rows.append({"price": value})
        for cp in (example4_compiled, example9_refined):
            naive_inst, ops_inst = Instrumentation(), Instrumentation()
            NaiveMatcher().find_matches(rows, cp, naive_inst)
            OpsStarMatcher().find_matches(rows, cp, ops_inst)
            assert ops_inst.tests <= naive_inst.tests
