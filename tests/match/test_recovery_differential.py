"""Randomized differential test: snapshot/restore never changes matches.

Streams random price series through :class:`OpsStreamMatcher` in random
chunk sizes, injecting a full snapshot → durable checkpoint → restore
cycle at randomized (seeded) points, and asserts the emitted match
sequence is identical to the batch :class:`OpsStarMatcher` on the same
rows — for both the compiled and the interpreted evaluator, which must
also accept each other's checkpoints (the fingerprint excludes the
evaluator mode).
"""

import dataclasses
import random

import pytest

from repro.match.ops_star import OpsStarMatcher
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import comparison
from repro.pattern.spec import PatternElement, PatternSpec
from repro.recovery import CheckpointStore
from tests.conftest import PREV, PRICE, price_predicate

RISE = price_predicate(comparison(PRICE, ">", PREV), label="rise")
FALL = price_predicate(comparison(PRICE, "<", PREV), label="fall")
LOW = price_predicate(comparison(PRICE, "<", 10), label="low")
MID = price_predicate(
    comparison(5, "<", PRICE), comparison(PRICE, "<", 40), label="mid"
)

#: Element pools the random patterns draw from.
_PREDICATES = [RISE, FALL, LOW, MID]


def random_pattern(rng: random.Random):
    length = rng.randint(2, 4)
    elements = []
    for position in range(length):
        predicate = rng.choice(_PREDICATES)
        star = rng.random() < 0.4
        elements.append(
            PatternElement(f"E{position}", predicate, star=star)
        )
    # At least one non-star element keeps the pattern satisfiable in the
    # usual sense (all-star patterns are legal but degenerate).
    if all(element.star for element in elements):
        elements[-1] = PatternElement(
            elements[-1].name, elements[-1].predicate, star=False
        )
    return PatternSpec(elements)


@pytest.mark.parametrize("codegen", [True, False], ids=["compiled", "interpreted"])
@pytest.mark.parametrize("seed", range(8))
def test_random_streams_with_restore_match_batch(seed, codegen, tmp_path):
    rng = random.Random(seed)
    spec = random_pattern(rng)
    pattern = compile_pattern(spec, codegen=codegen)
    rows = [{"price": float(rng.randint(1, 50))} for _ in range(rng.randint(50, 300))]
    expected = OpsStarMatcher().find_matches(rows, pattern)

    store = CheckpointStore(tmp_path / f"ck-{seed}")
    matcher = OpsStreamMatcher(pattern)
    emitted = []
    index = 0
    while index < len(rows):
        chunk = rng.randint(1, 7)
        for row in rows[index : index + chunk]:
            emitted.extend(matcher.push(row))
        index += chunk
        if rng.random() < 0.3:
            store.save(matcher.snapshot())
            # Restore under the *other* evaluator half the time: the
            # fingerprint guarantees checkpoints are interchangeable.
            restore_pattern = pattern
            if rng.random() < 0.5:
                restore_pattern = dataclasses.replace(
                    pattern, use_codegen=not pattern.use_codegen
                )
            matcher = OpsStreamMatcher.restore(store.load(), restore_pattern)
    emitted.extend(matcher.finish())
    assert emitted == expected


@pytest.mark.parametrize("codegen", [True, False], ids=["compiled", "interpreted"])
def test_restore_every_row_matches_batch(codegen, tmp_path):
    """The brutal case: checkpoint + restore after every single push."""
    rng = random.Random(99)
    pattern = compile_pattern(
        PatternSpec(
            [
                PatternElement("Y", RISE, star=True),
                PatternElement("Z", FALL),
            ]
        ),
        codegen=codegen,
    )
    rows = [{"price": float(rng.randint(1, 30))} for _ in range(120)]
    expected = OpsStarMatcher().find_matches(rows, pattern)
    store = CheckpointStore(tmp_path / "ck")
    matcher = OpsStreamMatcher(pattern)
    emitted = []
    for row in rows:
        emitted.extend(matcher.push(row))
        store.save(matcher.snapshot())
        matcher = OpsStreamMatcher.restore(store.load(), pattern)
    emitted.extend(matcher.finish())
    assert emitted == expected
