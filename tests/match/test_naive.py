"""The naive baseline matcher: semantics, spans, instrumentation."""

import pytest

from repro.match.base import Instrumentation, Span
from repro.match.naive import NaiveMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.spec import PatternElement, PatternSpec
from repro.pattern.predicates import comparison
from tests.conftest import PREV, PRICE, price_predicate, price_rows


def compiled(*defs):
    return compile_pattern(
        PatternSpec([PatternElement(n, p, star=s) for n, p, s in defs])
    )


RISE = price_predicate(comparison(PRICE, ">", PREV), label="rise")
FALL = price_predicate(comparison(PRICE, "<", PREV), label="fall")
LOW = price_predicate(comparison(PRICE, "<", 10), label="low")


class TestNonStarMatching:
    def test_single_match(self):
        cp = compiled(("A", RISE, False), ("B", FALL, False))
        rows = price_rows(10, 12, 9)
        (match,) = NaiveMatcher().find_matches(rows, cp)
        assert (match.start, match.end) == (1, 2)
        assert match.spans == (Span(1, 1), Span(2, 2))

    def test_no_match(self):
        cp = compiled(("A", RISE, False), ("B", FALL, False))
        assert NaiveMatcher().find_matches(price_rows(10, 11, 12), cp) == []

    def test_match_cannot_start_at_position_zero_with_previous(self):
        """Predicates referencing .previous fail on the first tuple."""
        cp = compiled(("A", RISE, False))
        matches = NaiveMatcher().find_matches(price_rows(5, 6), cp)
        assert [(m.start, m.end) for m in matches] == [(1, 1)]

    def test_non_overlapping_by_default(self):
        cp = compiled(("A", RISE, False), ("B", RISE, False))
        # 1 2 3 4 5: rises at 1,2,3,4 -> non-overlapping pairs (1,2), (3,4)
        matches = NaiveMatcher().find_matches(price_rows(1, 2, 3, 4, 5), cp)
        assert [(m.start, m.end) for m in matches] == [(1, 2), (3, 4)]

    def test_overlapping_option(self):
        cp = compiled(("A", RISE, False), ("B", RISE, False))
        matches = NaiveMatcher(overlapping=True).find_matches(
            price_rows(1, 2, 3, 4, 5), cp
        )
        assert [(m.start, m.end) for m in matches] == [(1, 2), (2, 3), (3, 4)]

    def test_bindings(self):
        cp = compiled(("A", RISE, False), ("B", FALL, False))
        (match,) = NaiveMatcher().find_matches(price_rows(10, 12, 9), cp)
        assert match.bindings() == {"A": Span(1, 1), "B": Span(2, 2)}
        assert match.span_of("B") == Span(2, 2)
        with pytest.raises(KeyError):
            match.span_of("Q")


class TestStarMatching:
    def test_greedy_maximal_run(self):
        cp = compiled(("A", RISE, True), ("B", FALL, False))
        rows = price_rows(10, 11, 12, 13, 9)
        (match,) = NaiveMatcher().find_matches(rows, cp)
        assert match.span_of("A") == Span(1, 3)
        assert match.span_of("B") == Span(4, 4)

    def test_star_requires_at_least_one(self):
        cp = compiled(("A", RISE, True), ("B", FALL, False))
        assert NaiveMatcher().find_matches(price_rows(10, 9, 8), cp) == []

    def test_trailing_star_completes_at_end_of_input(self):
        cp = compiled(("A", FALL, False), ("B", RISE, True))
        rows = price_rows(10, 9, 11, 12)
        (match,) = NaiveMatcher().find_matches(rows, cp)
        assert match.span_of("B") == Span(2, 3)

    def test_star_run_ending_tuple_feeds_next_element(self):
        """The tuple that ends a star run is matched by the next element."""
        cp = compiled(("A", RISE, True), ("B", FALL, True), ("C", RISE, True))
        rows = price_rows(10, 11, 12, 9, 8, 10, 11)
        (match,) = NaiveMatcher().find_matches(rows, cp)
        assert match.span_of("A") == Span(1, 2)
        assert match.span_of("B") == Span(3, 4)
        assert match.span_of("C") == Span(5, 6)

    def test_left_maximality(self):
        """Of two overlapping candidates, the earlier-starting one wins."""
        cp = compiled(("A", FALL, True), ("B", RISE, False))
        rows = price_rows(10, 9, 8, 7, 9)
        (match,) = NaiveMatcher().find_matches(rows, cp)
        assert match.start == 1  # not the shorter one starting at 2 or 3


class TestInstrumentation:
    def test_counts_every_test(self):
        cp = compiled(("A", LOW, False))
        inst = Instrumentation()
        NaiveMatcher().find_matches(price_rows(20, 5, 20), cp, inst)
        assert inst.tests == 3

    def test_trace_records_one_based_pairs(self):
        cp = compiled(("A", LOW, False))
        inst = Instrumentation(record_trace=True)
        NaiveMatcher().find_matches(price_rows(20, 5), cp, inst)
        assert inst.trace == [(1, 1), (2, 1)]

    def test_empty_input(self):
        cp = compiled(("A", LOW, False))
        inst = Instrumentation()
        assert NaiveMatcher().find_matches([], cp, inst) == []
        assert inst.tests == 0
