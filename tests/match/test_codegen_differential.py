"""Differential testing: compiled fast path vs. interpreted oracle.

Satellite of the codegen PR: every example query from the paper and a
battery of planted / random-walk workloads run through both evaluation
paths on every matcher, and everything observable must be identical —
matches, SELECT projections (including off-end NULLs), error behaviour,
and the paper's own metric, the predicate-test count (instrumentation is
recorded before dispatch, so the counts are path-independent by
construction; these tests pin that down).
"""

import dataclasses

import pytest

from repro.data.djia import djia_table
from repro.data.planted import plant_double_bottoms
from repro.data.quotes import quote_table
from repro.data.random_walk import geometric_walk, regime_switching_walk
from repro.data.workloads import ALL_EXAMPLES, EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Schema, Table
from repro.errors import ExecutionError
from repro.match.backtracking import BacktrackingMatcher
from repro.match.base import Instrumentation
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.predicates import AttributeDomains

MATCHER_NAMES = ["naive", "backtracking", "ops"]


def paper_catalog():
    return Catalog([quote_table(days=250, seed=7), djia_table()])


def run_both(query, matcher_name, catalog=None):
    """Execute one query on both paths; return the two (result, report,
    tests) triples after asserting they agree."""
    catalog = catalog or paper_catalog()
    outcomes = []
    for codegen in (True, False):
        executor = Executor(
            catalog,
            domains=AttributeDomains.prices(),
            matcher=matcher_name,
            codegen=codegen,
        )
        instrumentation = Instrumentation()
        result, report = executor.execute_with_report(query, instrumentation)
        outcomes.append((result, report, instrumentation.tests))
    (fast, fast_report, fast_tests), (oracle, oracle_report, oracle_tests) = outcomes
    assert fast.columns == oracle.columns
    assert fast.rows == oracle.rows
    assert fast_report.matches == oracle_report.matches
    assert fast_tests == oracle_tests
    return outcomes


class TestExampleQueries:
    @pytest.mark.parametrize("matcher_name", MATCHER_NAMES)
    @pytest.mark.parametrize("example", sorted(ALL_EXAMPLES))
    def test_examples_identical_on_both_paths(self, example, matcher_name):
        run_both(ALL_EXAMPLES[example], matcher_name)

    @pytest.mark.parametrize("example", ["example_1", "example_3", "example_4"])
    def test_star_free_examples_on_ops_nonstar(self, example):
        run_both(ALL_EXAMPLES[example], "ops-nonstar")


def price_rows(prices):
    return [{"price": float(p), "date": i} for i, p in enumerate(prices)]


def double_bottom_pattern():
    executor = Executor(
        Catalog([djia_table()]), domains=AttributeDomains.prices()
    )
    _, compiled = executor.prepare(EXAMPLE_10)
    return compiled


ALL_MATCHERS = [
    ("naive", NaiveMatcher()),
    ("backtracking", BacktrackingMatcher()),
    ("ops", OpsStarMatcher()),
]


class TestGeneratedWorkloads:
    """Pattern-level differential runs on synthetic series."""

    def assert_matcher_parity(self, matcher, rows, compiled):
        interpreted = dataclasses.replace(compiled, use_codegen=False)
        fast_inst, oracle_inst = Instrumentation(), Instrumentation()
        fast = matcher.find_matches(rows, compiled, fast_inst)
        oracle = matcher.find_matches(rows, interpreted, oracle_inst)
        assert fast == oracle
        assert fast_inst.tests == oracle_inst.tests

    @pytest.mark.parametrize("name,matcher", ALL_MATCHERS)
    def test_planted_double_bottoms(self, name, matcher):
        prices, anchors = plant_double_bottoms(400, [25, 140, 300], seed=11)
        compiled = double_bottom_pattern()
        self.assert_matcher_parity(matcher, price_rows(prices), compiled)
        # Sanity: the planted occurrences are actually found.
        matches = matcher.find_matches(price_rows(prices), compiled)
        assert len(matches) == len(anchors)

    @pytest.mark.parametrize("name,matcher", ALL_MATCHERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_geometric_walks(self, name, matcher, seed):
        prices = geometric_walk(500, seed=seed, shock_probability=0.05)
        self.assert_matcher_parity(
            matcher, price_rows(prices), double_bottom_pattern()
        )

    @pytest.mark.parametrize("name,matcher", ALL_MATCHERS)
    def test_regime_switching_walk(self, name, matcher):
        prices = regime_switching_walk(500, seed=3)
        self.assert_matcher_parity(
            matcher, price_rows(prices), double_bottom_pattern()
        )

    def test_star_free_pattern_on_ops_nonstar(self):
        catalog = paper_catalog()
        executor = Executor(catalog, domains=AttributeDomains.prices())
        _, compiled = executor.prepare(ALL_EXAMPLES["example_1"])
        assert not compiled.has_star
        prices = geometric_walk(500, seed=4, shock_probability=0.08)
        self.assert_matcher_parity(OpsMatcher(), price_rows(prices), compiled)


def tiny_catalog(prices):
    table = Table(
        "quote", Schema([("name", "str"), ("day", "int"), ("price", "float")])
    )
    table.insert_many(
        {"name": "IBM", "day": day, "price": float(p)}
        for day, p in enumerate(prices)
    )
    return Catalog([table])


class TestProjectionParity:
    def test_off_end_projections_are_null_on_both_paths(self):
        # The only match spans the whole table: X.previous and Y.NEXT
        # both navigate off the end and must project NULL identically.
        query = (
            "SELECT X.previous.price, Y.NEXT.price FROM quote "
            "CLUSTER BY name SEQUENCE BY day AS (X, Y) "
            "WHERE Y.price > X.price"
        )
        catalog = tiny_catalog([10, 12])
        for matcher_name in MATCHER_NAMES:
            (fast, _, _), _ = run_both(query, matcher_name, catalog=catalog)
            assert list(fast.rows) == [(None, None)]

    def test_division_by_zero_raises_identically(self):
        query = (
            "SELECT X.day FROM quote CLUSTER BY name SEQUENCE BY day "
            "AS (X, Y) WHERE Y.price / 0 > 1"
        )
        catalog = tiny_catalog([10, 12, 11])
        errors = []
        for codegen in (True, False):
            executor = Executor(catalog, codegen=codegen)
            with pytest.raises(ExecutionError) as info:
                executor.execute(query)
            errors.append(str(info.value))
        assert errors[0] == errors[1]
        assert "division by zero" in errors[0]
