"""The paper-literal non-star OPS loop: Figure 5 behaviour and agreement."""

import pytest

from repro.data.workloads import FIGURE5_SEQUENCE
from repro.errors import PlanningError
from repro.match.base import Instrumentation
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.spec import PatternElement, PatternSpec
from repro.pattern.predicates import comparison
from tests.conftest import PREV, PRICE, price_predicate, price_rows


class TestFigure5:
    """The Section 4.2.1 comparison on the paper's 15-value sequence."""

    @pytest.fixture(scope="class")
    def rows(self):
        return price_rows(*FIGURE5_SEQUENCE)

    def test_no_match_in_sequence(self, rows, example4_compiled):
        assert OpsMatcher().find_matches(rows, example4_compiled) == []
        assert NaiveMatcher().find_matches(rows, example4_compiled) == []

    def test_ops_path_strictly_shorter(self, rows, example4_compiled):
        naive_inst = Instrumentation(record_trace=True)
        ops_inst = Instrumentation(record_trace=True)
        NaiveMatcher().find_matches(rows, example4_compiled, naive_inst)
        OpsMatcher().find_matches(rows, example4_compiled, ops_inst)
        assert ops_inst.tests < naive_inst.tests
        assert len(ops_inst.trace) == ops_inst.tests

    @staticmethod
    def _backtracks(trace):
        return [
            previous - current
            for (previous, _), (current, _) in zip(trace, trace[1:])
            if current < previous
        ]

    def test_ops_backtracking_less_frequent_and_less_deep(
        self, rows, example4_compiled
    ):
        """The Figure 5 caption, verbatim: "for the OPS algorithm, the
        backtracking episodes are less frequent and less deep"."""
        naive_inst = Instrumentation(record_trace=True)
        ops_inst = Instrumentation(record_trace=True)
        NaiveMatcher().find_matches(rows, example4_compiled, naive_inst)
        OpsMatcher().find_matches(rows, example4_compiled, ops_inst)
        naive_backtracks = self._backtracks(naive_inst.trace)
        ops_backtracks = self._backtracks(ops_inst.trace)
        assert len(ops_backtracks) < len(naive_backtracks)  # less frequent
        assert sum(ops_backtracks) < sum(naive_backtracks)  # less deep

    def test_naive_does_backtrack(self, rows, example4_compiled):
        inst = Instrumentation(record_trace=True)
        NaiveMatcher().find_matches(rows, example4_compiled, inst)
        positions = [i for i, _ in inst.trace]
        assert positions != sorted(positions)

    def test_ops_skips_naive_retests(self, rows, example4_compiled):
        """Every (i, j) pair OPS tests, naive tests too — OPS is a
        strict subset on this input."""
        naive_inst = Instrumentation(record_trace=True)
        ops_inst = Instrumentation(record_trace=True)
        NaiveMatcher().find_matches(rows, example4_compiled, naive_inst)
        OpsMatcher().find_matches(rows, example4_compiled, ops_inst)
        assert set(ops_inst.trace) <= set(naive_inst.trace)


class TestEquivalenceWithUnifiedRuntime:
    def test_star_pattern_rejected(self, example9_compiled):
        with pytest.raises(PlanningError):
            OpsMatcher().find_matches([], example9_compiled)

    def test_same_counts_as_ops_star_on_nonstar(self, example4_compiled):
        """The unified runtime's count bookkeeping degenerates to the
        Section 4 formula: identical matches AND identical test counts."""
        import random

        rng = random.Random(21)
        rows = []
        value = 45.0
        for _ in range(400):
            value = max(30.0, min(60.0, value + rng.choice([-4, -2, -1, 1, 2, 4])))
            rows.append({"price": value})
        a_inst, b_inst = Instrumentation(), Instrumentation()
        a = OpsMatcher().find_matches(rows, example4_compiled, a_inst)
        b = OpsStarMatcher().find_matches(rows, example4_compiled, b_inst)
        assert a == b
        assert a_inst.tests == b_inst.tests


class TestMatches:
    def test_finds_all_nonoverlapping(self):
        rise = price_predicate(comparison(PRICE, ">", PREV))
        fall = price_predicate(comparison(PRICE, "<", PREV))
        cp = compile_pattern(
            PatternSpec([PatternElement("A", rise), PatternElement("B", fall)])
        )
        rows = price_rows(10, 12, 9, 11, 8, 13, 7)
        matches = OpsMatcher().find_matches(rows, cp)
        assert [(m.start, m.end) for m in matches] == [(1, 2), (3, 4), (5, 6)]
        assert matches == NaiveMatcher().find_matches(rows, cp)

    def test_success_spans_are_singletons(self, example4_compiled):
        rows = price_rows(55, 50, 45, 49, 51)
        matches = OpsMatcher().find_matches(rows, example4_compiled)
        assert matches == NaiveMatcher().find_matches(rows, example4_compiled)
        if matches:
            for span in matches[0].spans:
                assert span.length == 1
