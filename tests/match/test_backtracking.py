"""The backtracking (declarative-semantics) baseline."""

from repro.match.backtracking import BacktrackingMatcher
from repro.match.base import Instrumentation, Span
from repro.match.naive import NaiveMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.spec import PatternElement, PatternSpec
from repro.pattern.predicates import comparison
from tests.conftest import PREV, PRICE, price_predicate, price_rows


def compiled(*defs):
    return compile_pattern(
        PatternSpec([PatternElement(n, p, star=s) for n, p, s in defs])
    )


RISE = price_predicate(comparison(PRICE, ">", PREV))
FALL = price_predicate(comparison(PRICE, "<", PREV))
HIGH = price_predicate(comparison(PRICE, ">", 20))
VERY_HIGH = price_predicate(comparison(PRICE, ">", 30))


class TestAgreementOnExclusivePatterns:
    """With mutually exclusive adjacent predicates there is a unique run
    decomposition, so backtracking and greedy coincide."""

    def test_rise_fall(self):
        cp = compiled(("A", RISE, True), ("B", FALL, True))
        rows = price_rows(10, 11, 12, 9, 8, 10, 11, 7)
        assert BacktrackingMatcher().find_matches(rows, cp) == NaiveMatcher().find_matches(
            rows, cp
        )

    def test_paper_example9_band_data(self, example9_compiled):
        import random

        rng = random.Random(33)
        rows = []
        value = 33.0
        for _ in range(150):
            value = max(22.0, min(44.0, value + rng.choice([-5, -2, -1, 1, 2, 5])))
            rows.append({"price": value})
        assert BacktrackingMatcher().find_matches(
            rows, example9_compiled
        ) == NaiveMatcher().find_matches(rows, example9_compiled)


class TestDeclarativeVsGreedySemantics:
    """On overlapping star predicates, the declarative reading admits
    matches the greedy commit abandons — the gap this matcher exists to
    expose."""

    def test_backtracking_finds_split_greedy_misses(self):
        # (*high, very_high): greedy *high swallows the 35 (it is > 20),
        # leaving nothing > 30 behind; backtracking shortens the run.
        cp = compiled(("A", HIGH, True), ("B", VERY_HIGH, False))
        rows = price_rows(25, 26, 35)
        assert NaiveMatcher().find_matches(rows, cp) == []
        (match,) = BacktrackingMatcher().find_matches(rows, cp)
        assert match.span_of("A") == Span(0, 1)
        assert match.span_of("B") == Span(2, 2)

    def test_maximal_first_preference(self):
        # When the maximal split works, backtracking returns it.
        cp = compiled(("A", HIGH, True), ("B", VERY_HIGH, False))
        rows = price_rows(25, 26, 27, 35)
        (match,) = BacktrackingMatcher().find_matches(rows, cp)
        assert match.span_of("A") == Span(0, 2)


class TestCost:
    def test_backtracking_explores_more_on_failures(self):
        """Deep failed attempts re-test downstream per split boundary."""
        low = price_predicate(comparison(PRICE, "<", 5))
        cp = compiled(("A", RISE, True), ("B", FALL, True), ("S", low, False))
        import random

        rng = random.Random(2)
        rows = []
        value = 50.0
        direction = 1
        for index in range(300):
            if index % 20 == 0:
                direction = -direction
            value = max(10.0, value + direction * rng.uniform(0.5, 1.5))
            rows.append({"price": round(value, 2)})
        greedy_inst, back_inst = Instrumentation(), Instrumentation()
        NaiveMatcher().find_matches(rows, cp, greedy_inst)
        BacktrackingMatcher().find_matches(rows, cp, back_inst)
        assert back_inst.tests >= greedy_inst.tests


class TestEdges:
    def test_empty_input(self):
        cp = compiled(("A", RISE, True))
        assert BacktrackingMatcher().find_matches([], cp) == []

    def test_trailing_star(self):
        cp = compiled(("A", FALL, False), ("B", RISE, True))
        rows = price_rows(10, 9, 11, 12)
        (match,) = BacktrackingMatcher().find_matches(rows, cp)
        assert match.span_of("B") == Span(2, 3)

    def test_non_overlapping_resume(self):
        cp = compiled(("A", RISE, False), ("B", RISE, False))
        matches = BacktrackingMatcher().find_matches(price_rows(1, 2, 3, 4, 5), cp)
        assert [(m.start, m.end) for m in matches] == [(1, 2), (3, 4)]
