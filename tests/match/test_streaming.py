"""Streaming OPS: incremental emission, window trimming, batch agreement."""

import random

import pytest

from repro.errors import StreamStateError
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.match.streaming import OpsStreamMatcher, pattern_offsets, _Window
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import (
    ElementPredicate,
    OrCondition,
    ResidualCondition,
    comparison,
)
from repro.pattern.spec import PatternElement, PatternSpec
from tests.conftest import PREV, PRICE, price_predicate, price_rows


def compiled(*defs):
    return compile_pattern(
        PatternSpec([PatternElement(n, p, star=s) for n, p, s in defs])
    )


RISE = price_predicate(comparison(PRICE, ">", PREV))
FALL = price_predicate(comparison(PRICE, "<", PREV))
LOW = price_predicate(comparison(PRICE, "<", 10))


class TestPatternOffsets:
    def test_previous_reference(self):
        spec = PatternSpec([PatternElement("A", RISE)])
        assert pattern_offsets(spec) == (-1, 0, False)

    def test_next_reference(self):
        peek = price_predicate(comparison(PRICE, "<", PRICE.next))
        spec = PatternSpec([PatternElement("A", peek)])
        assert pattern_offsets(spec) == (0, 1, False)

    def test_deep_previous(self):
        deep = price_predicate(comparison(PRICE, "<", PREV.previous))
        spec = PatternSpec([PatternElement("A", deep)])
        assert pattern_offsets(spec)[0] == -2

    def test_or_condition_scanned(self):
        condition = OrCondition(
            [[comparison(PRICE, "<", PREV)], [comparison(PRICE, ">", 90)]]
        )
        spec = PatternSpec([PatternElement("A", ElementPredicate([condition]))])
        assert pattern_offsets(spec) == (-1, 0, False)

    def test_residual_marks_opaque(self):
        pred = ElementPredicate([ResidualCondition(lambda _: True)])
        spec = PatternSpec([PatternElement("A", pred)])
        assert pattern_offsets(spec)[2] is True


class TestWindow:
    def test_absolute_indexing_after_trim(self):
        window = _Window()
        for value in range(10):
            window.append({"v": value})
        window.trim_before(4)
        assert len(window) == 10
        assert window[4]["v"] == 4
        assert window.buffered == 6

    def test_trimmed_read_is_loud(self):
        window = _Window()
        window.append({"v": 0})
        window.append({"v": 1})
        window.trim_before(1)
        with pytest.raises(RuntimeError):
            window[0]

    def test_trim_is_monotone(self):
        window = _Window()
        for value in range(5):
            window.append({"v": value})
        window.trim_before(3)
        window.trim_before(1)  # no-op, never un-trims
        assert window.buffered == 2


class TestStreamingAgreement:
    def _stream(self, rows, plan, trim=True):
        matcher = OpsStreamMatcher(plan, trim=trim)
        collected = []
        for row in rows:
            collected.extend(matcher.push(row))
        collected.extend(matcher.finish())
        return collected, matcher

    def test_simple_pattern(self):
        plan = compiled(("A", RISE, False), ("B", FALL, False))
        rows = price_rows(10, 12, 9, 11, 8, 13, 7)
        streamed, _ = self._stream(rows, plan)
        assert streamed == OpsStarMatcher().find_matches(rows, plan)

    def test_star_pattern(self):
        plan = compiled(("A", RISE, True), ("B", FALL, True), ("S", LOW, False))
        rows = price_rows(50, 51, 52, 49, 48, 47, 5, 60, 61, 58, 4)
        streamed, _ = self._stream(rows, plan)
        assert streamed == OpsStarMatcher().find_matches(rows, plan)
        assert streamed == NaiveMatcher().find_matches(rows, plan)

    def test_random_differential(self):
        rng = random.Random(19)
        predicates = [RISE, FALL, LOW, price_predicate(comparison(PRICE, ">", 60))]
        for _ in range(200):
            plan = compile_pattern(
                PatternSpec(
                    [
                        PatternElement(
                            f"V{k}", rng.choice(predicates), star=rng.random() < 0.5
                        )
                        for k in range(rng.randrange(1, 5))
                    ]
                )
            )
            rows = []
            value = 40.0
            for _ in range(rng.randrange(0, 60)):
                value = max(2.0, min(95.0, value + rng.choice([-30, -6, -1, 1, 6, 30])))
                rows.append({"price": value})
            streamed, _ = self._stream(rows, plan)
            assert streamed == OpsStarMatcher().find_matches(rows, plan)

    def test_lookahead_pattern(self):
        """Predicates peeking at .next must defer until the row arrives."""
        peek = price_predicate(
            comparison(PRICE, "<", PREV), comparison(PRICE, "<", PRICE.next)
        )
        plan = compiled(("A", peek, False))
        rows = price_rows(10, 8, 12, 11, 7, 9)
        streamed, _ = self._stream(rows, plan)
        assert streamed == OpsStarMatcher().find_matches(rows, plan)


class TestIncrementalBehaviour:
    def test_match_emitted_at_completion(self):
        plan = compiled(("A", RISE, False), ("B", FALL, False))
        matcher = OpsStreamMatcher(plan)
        assert matcher.push({"price": 10.0}) == []
        assert matcher.push({"price": 12.0}) == []
        (match,) = matcher.push({"price": 9.0})
        assert (match.start, match.end) == (1, 2)
        assert matcher.finish() == []

    def test_trailing_star_needs_finish(self):
        plan = compiled(("A", FALL, False), ("B", RISE, True))
        matcher = OpsStreamMatcher(plan)
        for price in (10.0, 9.0, 11.0, 12.0):
            assert matcher.push({"price": price}) == []
        (match,) = matcher.finish()
        assert match.span_of("B").end == 3

    def test_push_after_finish_rejected(self):
        plan = compiled(("A", LOW, False))
        matcher = OpsStreamMatcher(plan)
        matcher.finish()
        with pytest.raises(RuntimeError):
            matcher.push({"price": 1.0})

    def test_push_after_finish_is_contextual_repro_error(self):
        plan = compiled(("A", LOW, False))
        matcher = OpsStreamMatcher(plan)
        matcher.push({"price": 5.0})
        matcher.finish()
        with pytest.raises(StreamStateError) as excinfo:
            matcher.push({"price": 1.0})
        message = str(excinfo.value)
        assert "push() after finish()" in message
        assert "1 row(s)" in message
        assert "1 match(es)" in message

    def test_finish_idempotent(self):
        plan = compiled(("A", LOW, False))
        matcher = OpsStreamMatcher(plan)
        emitted = matcher.push({"price": 5.0})
        assert len(emitted) == 1  # single-element match completes on push
        assert matcher.finish() == []
        assert matcher.finish() == []
        assert len(matcher.matches) == 1


class TestTrimming:
    def test_window_stays_bounded_on_nonmatching_stream(self):
        """The whole point: O(attempt) memory, not O(stream)."""
        plan = compiled(("A", RISE, False), ("B", FALL, False), ("S", LOW, False))
        matcher = OpsStreamMatcher(plan)
        value = 50.0
        rng = random.Random(23)
        peak = 0
        for _ in range(5000):
            value = max(20.0, min(90.0, value + rng.choice([-2.0, -1.0, 1.0, 2.0])))
            matcher.push({"price": value})
            peak = max(peak, matcher.buffered_rows)
        assert peak <= 10  # attempts are at most m deep plus lookback

    def test_star_window_bounded_by_attempt_length(self):
        plan = compiled(("A", RISE, True), ("B", FALL, True), ("S", LOW, False))
        matcher = OpsStreamMatcher(plan)
        rng = random.Random(29)
        value = 50.0
        peak = 0
        run = 0
        direction = 1
        for _ in range(4000):
            if run <= 0:
                direction = -direction
                run = rng.randrange(5, 15)
            value = max(20.0, value + direction * rng.uniform(0.5, 1.0))
            run -= 1
            matcher.push({"price": value})
            peak = max(peak, matcher.buffered_rows)
        # Window tracks the live attempt (a few runs), far below the stream.
        assert peak < 200

    def test_trim_disabled_keeps_history(self):
        plan = compiled(("A", RISE, False), ("B", FALL, False))
        matcher = OpsStreamMatcher(plan, trim=False)
        for price in range(100):
            matcher.push({"price": float(price)})
        assert matcher.buffered_rows == 100

    def test_opaque_pattern_disables_trimming_automatically(self):
        pred = ElementPredicate(
            [comparison(PRICE, "<", 10), ResidualCondition(lambda _: True)]
        )
        plan = compile_pattern(PatternSpec([PatternElement("A", pred)]))
        matcher = OpsStreamMatcher(plan)
        for price in range(50):
            matcher.push({"price": float(price + 20)})
        assert matcher.buffered_rows == 50
