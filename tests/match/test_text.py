"""Classic string matchers: paper's KMP worked example + cross-agreement."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.match.text import (
    TextStats,
    boyer_moore_search,
    karp_rabin_search,
    kmp_failure,
    kmp_search,
    naive_search,
)

ALGORITHMS = [naive_search, kmp_search, boyer_moore_search, karp_rabin_search]


class TestKmpFailureArray:
    def test_paper_pattern_abcabcacab(self):
        """The Section 3.1 example pattern; next values from Knuth et al."""
        next_ = kmp_failure("abcabcacab")
        assert next_[1:] == [0, 1, 1, 0, 1, 1, 0, 5, 0, 1]

    def test_all_distinct_characters(self):
        assert kmp_failure("abcd")[1:] == [0, 1, 1, 1]

    def test_repeated_character(self):
        # "aaaa": a mismatch anywhere proves the char != 'a', so every
        # position resets to 0.
        assert kmp_failure("aaaa")[1:] == [0, 0, 0, 0]

    def test_empty_pattern(self):
        assert kmp_failure("") == [0]


class TestPaperSearchExample:
    TEXT = "babcbabcabcaabcabcabcacabc"
    PATTERN = "abcabcacab"

    def test_occurrence_found(self):
        expected = [self.TEXT.index(self.PATTERN)]
        for algorithm in ALGORITHMS:
            assert algorithm(self.TEXT, self.PATTERN) == expected

    def test_kmp_fewer_comparisons_than_naive(self):
        naive_stats, kmp_stats = TextStats(), TextStats()
        naive_search(self.TEXT, self.PATTERN, naive_stats)
        kmp_search(self.TEXT, self.PATTERN, kmp_stats)
        assert kmp_stats.comparisons < naive_stats.comparisons


class TestEdgeCases:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty_pattern_matches_everywhere(self, algorithm):
        assert algorithm("abc", "") == [0, 1, 2, 3]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_pattern_longer_than_text(self, algorithm):
        assert algorithm("ab", "abc") == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_exact_match(self, algorithm):
        assert algorithm("abc", "abc") == [0]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_overlapping_occurrences(self, algorithm):
        assert algorithm("aaaa", "aa") == [0, 1, 2]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_periodic_pattern(self, algorithm):
        assert algorithm("abababab", "abab") == [0, 2, 4]


class TestCrossAgreement:
    def test_random_binary_strings(self):
        rng = random.Random(6)
        for _ in range(200):
            text = "".join(rng.choice("ab") for _ in range(rng.randint(0, 60)))
            pattern = "".join(rng.choice("ab") for _ in range(rng.randint(1, 6)))
            expected = naive_search(text, pattern)
            assert kmp_search(text, pattern) == expected
            assert boyer_moore_search(text, pattern) == expected
            assert karp_rabin_search(text, pattern) == expected

    @given(st.text(alphabet="abc", max_size=50), st.text(alphabet="abc", min_size=1, max_size=5))
    def test_property_agreement(self, text, pattern):
        expected = naive_search(text, pattern)
        assert kmp_search(text, pattern) == expected
        assert boyer_moore_search(text, pattern) == expected
        assert karp_rabin_search(text, pattern) == expected


class TestComplexityCharacteristics:
    def test_kmp_linear_comparisons(self):
        """KMP never exceeds 2n comparisons (the classic bound)."""
        text = "ab" * 500 + "ac"
        pattern = "abac"
        stats = TextStats()
        kmp_search(text, pattern, stats)
        assert stats.comparisons <= 2 * len(text)

    def test_naive_quadratic_on_adversarial_input(self):
        text = "a" * 400
        pattern = "a" * 20 + "b"
        naive_stats, kmp_stats = TextStats(), TextStats()
        naive_search(text, pattern, naive_stats)
        kmp_search(text, pattern, kmp_stats)
        assert naive_stats.comparisons > 10 * kmp_stats.comparisons

    def test_boyer_moore_sublinear_on_random_text(self):
        """BM skips most characters on large alphabets."""
        rng = random.Random(8)
        text = "".join(rng.choice("abcdefghijklmnop") for _ in range(5000))
        pattern = "qrstuvwx"  # absent, distinct characters
        stats = TextStats()
        boyer_moore_search(text, pattern, stats)
        assert stats.comparisons < len(text)

    def test_karp_rabin_hash_counts(self):
        stats = TextStats()
        karp_rabin_search("abcdefgh", "cde", stats)
        assert stats.hash_operations > 0
