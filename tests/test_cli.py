"""The command-line interface."""

import io

import pytest

from repro.cli import main


QUERY = (
    "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) "
    "WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price"
)


@pytest.fixture
def quotes_csv(tmp_path):
    path = tmp_path / "quotes.csv"
    path.write_text(
        "name,date,price\n"
        "IBM,1999-01-25,100.0\n"
        "IBM,1999-01-26,120.0\n"
        "IBM,1999-01-27,90.0\n"
        "INTC,1999-01-25,60.0\n"
        "INTC,1999-01-26,61.0\n"
        "INTC,1999-01-27,62.0\n"
    )
    return path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestQuery:
    def test_csv_query(self, quotes_csv):
        code, output = run_cli(
            "query",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--positive",
            "price",
            QUERY,
        )
        assert code == 0
        assert "IBM" in output
        assert "(1 rows)" in output

    def test_stats_flag(self, quotes_csv):
        code, output = run_cli(
            "query",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--positive",
            "price",
            "--stats",
            QUERY,
        )
        assert code == 0
        assert "predicate_tests=" in output
        assert "speedup=" in output

    def test_matcher_selection(self, quotes_csv):
        code, output = run_cli(
            "query",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--matcher",
            "naive",
            QUERY,
        )
        assert code == 0
        assert "IBM" in output

    def test_demo_data(self):
        code, output = run_cli(
            "query",
            "--demo-data",
            "--positive",
            "price",
            "--max-rows",
            "3",
            "SELECT X.date FROM djia SEQUENCE BY date AS (X, Y) "
            "WHERE Y.price < 0.97 * X.price",
        )
        assert code == 0
        assert "rows)" in output

    def test_unknown_table_is_clean_error(self, capsys):
        code, _ = run_cli("query", "SELECT X.a FROM nosuch AS (X) WHERE X.a > 1")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_syntax_error_is_clean_error(self, capsys):
        code, _ = run_cli("query", "--demo-data", "SELECT FROM WHERE")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestResilienceFlags:
    TABLE_FLAGS = ("--positive", "price")

    @pytest.fixture
    def dirty_csv(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text(
            "name,date,price\n"
            "IBM,1999-01-25,100.0\n"
            "IBM,bad-date,120.0\n"
            "IBM,1999-01-26,120.0\n"
            "IBM,1999-01-27,90.0\n"
        )
        return path

    def table_arg(self, path):
        return f"quote={path}:name:str,date:date,price:float"

    def test_dirty_csv_raise_is_default(self, dirty_csv, capsys):
        code, _ = run_cli(
            "query", "--table", self.table_arg(dirty_csv), QUERY
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "bad-date" in err

    def test_dirty_csv_skip_quarantines(self, dirty_csv, capsys):
        code, output = run_cli(
            "query",
            "--table",
            self.table_arg(dirty_csv),
            "--on-error",
            "skip",
            *self.TABLE_FLAGS,
            QUERY,
        )
        assert code == 0
        assert "IBM" in output and "(1 rows)" in output
        err = capsys.readouterr().err
        assert "quarantined 1 row(s)" in err
        assert ":3:" in err  # the bad physical line

    def test_max_matches_limit_exit_code(self, quotes_csv, capsys):
        code, output = run_cli(
            "query",
            "--table",
            self.table_arg(quotes_csv),
            "--max-matches",
            "1",
            *self.TABLE_FLAGS,
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date "
            "AS (X, Y) WHERE Y.price > X.price",
        )
        assert code == 3
        assert "(1 rows)" in output
        assert "limit exceeded: max_matches" in capsys.readouterr().err

    def test_timeout_flag_accepted(self, quotes_csv):
        # A generous deadline on a tiny input must not perturb the result.
        code, output = run_cli(
            "query",
            "--table",
            self.table_arg(quotes_csv),
            "--timeout",
            "60",
            *self.TABLE_FLAGS,
            QUERY,
        )
        assert code == 0
        assert "(1 rows)" in output

    def test_bad_on_error_value_rejected(self, quotes_csv):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--table",
                    self.table_arg(quotes_csv),
                    "--on-error",
                    "explode",
                    QUERY,
                ]
            )

    def test_script_collect_continues(self, tmp_path, capsys):
        script = tmp_path / "broken.sql"
        script.write_text(
            "CREATE TABLE t ( name Varchar(8), day Int, price Real );\n"
            "INSERT INTO t VALUES ('A', 1, 10.0), ('A', 2, 9.0);\n"
            "SELECT nonsense;\n"
            "SELECT X.day FROM t CLUSTER BY name SEQUENCE BY day "
            "AS (X, Y) WHERE Y.price < X.price\n"
        )
        code, output = run_cli(
            "script", str(script), "--on-error", "collect"
        )
        assert code == 0
        assert "(1 rows)" in output  # the final SELECT still ran
        err = capsys.readouterr().err
        assert "statement #3" in err

    def test_script_raise_stops_with_statement_context(self, tmp_path, capsys):
        script = tmp_path / "broken.sql"
        script.write_text(
            "CREATE TABLE t ( name Varchar(8), day Int, price Real );\n"
            "SELECT nonsense;\n"
        )
        code, _ = run_cli("script", str(script))
        assert code == 1
        assert "statement #2" in capsys.readouterr().err


class TestExplain:
    def test_plan_output(self):
        code, output = run_cli(
            "explain",
            "--positive",
            "price",
            "SELECT X.date FROM djia SEQUENCE BY date AS (X, *Y, Z) "
            "WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price",
        )
        assert code == 0
        assert "shift:" in output and "next:" in output
        assert "implication graph" in output

    def test_cluster_filter_shown(self, quotes_csv):
        code, output = run_cli(
            "explain",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "SELECT X.date FROM quote CLUSTER BY name SEQUENCE BY date "
            "AS (X, Y) WHERE X.name = 'IBM' AND Y.price > X.price",
        )
        assert code == 0
        assert "cluster filter" in output and "IBM" in output


class TestProfile:
    def test_profile_flag_appends_profile_same_rows(self, quotes_csv):
        table = f"quote={quotes_csv}:name:str,date:date,price:float"
        code, plain = run_cli(
            "query", "--table", table, "--positive", "price", QUERY
        )
        assert code == 0
        code, profiled = run_cli(
            "query", "--table", table, "--positive", "price",
            "--profile", QUERY,
        )
        assert code == 0
        assert "Query Profile" in profiled
        assert "execute" in profiled and "scan" in profiled
        # The profile is appended; the result rows are untouched.
        assert profiled.startswith(plain)
        assert "Query Profile" not in plain

    def test_explain_analyze_renders_span_tree(self, quotes_csv):
        code, output = run_cli(
            "explain",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--positive",
            "price",
            "--analyze",
            QUERY,
        )
        assert code == 0
        assert "Query Profile" in output
        # The explain itself compiled the plan, so the traced run hits.
        assert "cache=hit" in output
        assert "partition=IBM" in output


class TestArgumentParsing:
    def test_bad_table_spec(self):
        with pytest.raises(SystemExit):
            main(["query", "--table", "nonsense", "SELECT X.a FROM t AS (X) WHERE X.a>1"])

    def test_bad_column_type(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--table",
                    "t=f.csv:a:varchar",
                    "SELECT X.a FROM t AS (X) WHERE X.a>1",
                ]
            )

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestScript:
    def test_script_subcommand(self, tmp_path):
        script = tmp_path / "session.sql"
        script.write_text(
            "CREATE TABLE quote ( name Varchar(8), date Date, price Real );\n"
            "INSERT INTO quote VALUES ('IBM', '1999-01-25', 100.0);\n"
            "INSERT INTO quote VALUES ('IBM', '1999-01-26', 120.0);\n"
            "INSERT INTO quote VALUES ('IBM', '1999-01-27', 90.0);\n"
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date "
            "AS (X, Y, Z) "
            "WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price\n"
        )
        code, output = run_cli("script", str(script), "--positive", "price")
        assert code == 0
        assert "IBM" in output and "(1 rows)" in output

    def test_script_error_is_clean(self, tmp_path, capsys):
        script = tmp_path / "bad.sql"
        script.write_text("INSERT INTO nosuch VALUES (1)")
        code, _ = run_cli("script", str(script))
        assert code == 1
        assert "error:" in capsys.readouterr().err


STREAM_QUERY = (
    "SELECT FIRST(Y).price FROM walk SEQUENCE BY t AS (X, *Y, Z) "
    "WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price"
)


@pytest.fixture
def walk_csv(tmp_path):
    path = tmp_path / "walk.csv"
    lines = ["t,price"]
    prices = [10, 11, 12, 9, 10, 13, 8, 9, 14, 7]
    lines.extend(f"{t},{p}.0" for t, p in enumerate(prices))
    path.write_text("\n".join(lines) + "\n")
    return path


class TestStream:
    def _args(self, walk_csv, *extra):
        return (
            "stream",
            "--table",
            f"walk={walk_csv}:t:int,price:float",
            "--positive",
            "price",
            *extra,
            STREAM_QUERY,
        )

    def test_stream_over_csv(self, walk_csv):
        code, output = run_cli(*self._args(walk_csv))
        assert code == 0
        assert output.splitlines()[0] == "FIRST(Y).price"
        assert "(3 rows)" in output

    def test_stream_matches_query_subcommand(self, walk_csv):
        stream_code, stream_out = run_cli(*self._args(walk_csv))
        query_code, query_out = run_cli(
            "query",
            "--table",
            f"walk={walk_csv}:t:int,price:float",
            "--positive",
            "price",
            STREAM_QUERY,
        )
        assert stream_code == query_code == 0
        assert stream_out.count("\n") >= 2  # header + rows + count

    def test_checkpoint_then_resume_emits_nothing(self, walk_csv, tmp_path):
        checkpoint = tmp_path / "walk.ckpt"
        code, output = run_cli(
            *self._args(walk_csv, "--checkpoint", str(checkpoint))
        )
        assert code == 0
        assert "(3 rows)" in output
        assert checkpoint.exists()
        code, output = run_cli(
            *self._args(walk_csv, "--checkpoint", str(checkpoint), "--resume")
        )
        assert code == 0
        assert "(0 rows)" in output

    def test_resume_requires_checkpoint(self, walk_csv, capsys):
        code, _ = run_cli(*self._args(walk_csv, "--resume"))
        assert code == 1
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_interpreted_evaluator_agrees(self, walk_csv):
        compiled_code, compiled_out = run_cli(*self._args(walk_csv))
        interp_code, interp_out = run_cli(
            *self._args(walk_csv, "--evaluator", "interpreted")
        )
        assert compiled_code == interp_code == 0
        assert compiled_out == interp_out

    def test_diagnostics_json_written(self, walk_csv, tmp_path):
        report = tmp_path / "diag.json"
        checkpoint = tmp_path / "walk.ckpt"
        code, _ = run_cli(
            *self._args(
                walk_csv,
                "--checkpoint",
                str(checkpoint),
                "--diagnostics-json",
                str(report),
            )
        )
        assert code == 0
        import json

        payload = json.loads(report.read_text())
        assert payload["counters"]["checkpoints_written"] >= 1
        assert payload["counters"]["retries"] == 0

    def test_diagnostics_json_on_limit_exit(self, walk_csv, tmp_path, capsys):
        report = tmp_path / "diag.json"
        code, _ = run_cli(
            *self._args(
                walk_csv,
                "--max-matches",
                "1",
                "--diagnostics-json",
                str(report),
            )
        )
        assert code == 3
        import json

        payload = json.loads(report.read_text())
        assert payload["counters"]["limits_hit"] == 1
        assert not payload["ok"]

    def test_unknown_table_is_clean_error(self, capsys):
        code, _ = run_cli("stream", "--positive", "price", STREAM_QUERY)
        assert code == 1
        assert "no stream source" in capsys.readouterr().err


class TestDiagnosticsJson:
    def test_query_writes_diagnostics_on_limit(self, quotes_csv, tmp_path):
        report = tmp_path / "diag.json"
        code, _ = run_cli(
            "query",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--positive",
            "price",
            "--max-matches",
            "1",
            "--diagnostics-json",
            str(report),
            QUERY,
        )
        assert code == 3
        import json

        payload = json.loads(report.read_text())
        assert payload["counters"]["limits_hit"] == 1

    def test_script_writes_diagnostics(self, tmp_path):
        report = tmp_path / "diag.json"
        script = tmp_path / "session.sql"
        script.write_text(
            "CREATE TABLE q ( name Varchar(8), price Real );\n"
            "INSERT INTO q VALUES ('IBM', 'oops');"
        )
        code, _ = run_cli(
            "script",
            str(script),
            "--on-error",
            "skip",
            "--diagnostics-json",
            str(report),
        )
        assert code == 0
        import json

        payload = json.loads(report.read_text())
        assert payload["counters"]["quarantined_rows"] == 1


class TestWorkers:
    def test_workers_output_identical_to_serial(self, quotes_csv):
        argv = [
            "query",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--positive",
            "price",
            "--stats",
            QUERY,
        ]
        serial_code, serial_out = run_cli(*argv)
        parallel_code, parallel_out = run_cli(*argv, "--workers", "2")
        assert (serial_code, serial_out) == (parallel_code, parallel_out)

    def test_workers_process_mode(self, quotes_csv):
        argv = [
            "query",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--positive",
            "price",
            QUERY,
        ]
        _, serial_out = run_cli(*argv)
        code, parallel_out = run_cli(
            *argv, "--workers", "2", "--parallel-mode", "process"
        )
        assert code == 0 and parallel_out == serial_out

    def test_invalid_workers_is_clean_error(self, quotes_csv, capsys):
        code, _ = run_cli(
            "query",
            "--table",
            f"quote={quotes_csv}:name:str,date:date,price:float",
            "--workers",
            "0",
            QUERY,
        )
        assert code == 1
        assert "workers" in capsys.readouterr().err

    def test_script_workers(self, tmp_path):
        script = tmp_path / "session.sql"
        script.write_text(
            "CREATE TABLE q ( name Varchar(8), date Int, price Real );\n"
            "INSERT INTO q VALUES ('IBM', 1, 100.0), ('IBM', 2, 120.0), "
            "('ACME', 1, 50.0), ('ACME', 2, 70.0);\n"
            "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY date "
            "AS (X, Y) WHERE Y.price > 1.1 * X.price;"
        )
        serial = run_cli("script", str(script))
        parallel = run_cli("script", str(script), "--workers", "2")
        assert serial == parallel
        assert serial[0] == 0 and "(2 rows)" in serial[1]
