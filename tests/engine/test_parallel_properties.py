"""Property-based tests for the partition splitter and ordered merger.

The invariants that make parallel execution safe regardless of data
shape: :func:`split_partitions` never loses, duplicates, or reorders a
partition for any cluster-key distribution (empty, singleton, heavily
skewed), and :func:`ordered_partition_outcomes` restores global
partition order from any unit completion order — rejecting duplicated
or out-of-order partition indices instead of silently reordering rows.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.parallel import (
    Partition,
    index_outcomes,
    ordered_partition_outcomes,
    split_partitions,
)
from repro.engine.table import Schema, Table
from repro.errors import ExecutionError
from repro.pattern.predicates import AttributeDomains


class TestSplitter:
    @given(
        total=st.integers(min_value=0, max_value=500),
        workers=st.integers(min_value=1, max_value=16),
    )
    def test_split_covers_everything_exactly_once_in_order(self, total, workers):
        items = list(range(total))
        units = split_partitions(items, workers)
        rebuilt = [p for unit in units for p in unit.partitions]
        assert rebuilt == items
        assert all(unit.partitions for unit in units)
        assert [unit.index for unit in units] == list(range(len(units)))

    @given(
        total=st.integers(min_value=1, max_value=500),
        workers=st.integers(min_value=1, max_value=16),
        unit_size=st.integers(min_value=1, max_value=64),
    )
    def test_explicit_unit_size_is_respected(self, total, workers, unit_size):
        units = split_partitions(list(range(total)), workers, unit_size)
        assert all(len(unit.partitions) <= unit_size for unit in units)
        assert sum(len(unit.partitions) for unit in units) == total

    @given(workers=st.integers(min_value=1, max_value=16))
    def test_empty_input_yields_no_units(self, workers):
        assert split_partitions([], workers) == []

    def test_singleton(self):
        units = split_partitions(["only"], 8)
        assert len(units) == 1 and units[0].partitions == ("only",)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ExecutionError):
            split_partitions([1, 2], 0)
        with pytest.raises(ExecutionError):
            split_partitions([1, 2], 2, unit_size=0)


def fake_outcomes(partition_indices, unit_size=3):
    """Unit outcomes covering ``partition_indices`` in consecutive chunks."""
    outcomes = []
    for start in range(0, len(partition_indices), unit_size):
        chunk = partition_indices[start : start + unit_size]
        outcomes.append(
            {
                "unit": len(outcomes),
                "partitions": [{"partition": index} for index in chunk],
            }
        )
    return outcomes


class TestMerger:
    @given(
        total=st.integers(min_value=0, max_value=200),
        unit_size=st.integers(min_value=1, max_value=17),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_completion_order_merges_back_in_order(
        self, total, unit_size, seed
    ):
        outcomes = fake_outcomes(list(range(total)), unit_size)
        random.Random(seed).shuffle(outcomes)
        merged = [
            outcome["partition"]
            for outcome in ordered_partition_outcomes(index_outcomes(outcomes))
        ]
        assert merged == list(range(total))

    def test_duplicate_unit_index_rejected(self):
        outcomes = fake_outcomes(list(range(6)))
        outcomes[1]["unit"] = outcomes[0]["unit"]
        with pytest.raises(ExecutionError, match="duplicate outcome"):
            index_outcomes(outcomes)

    def test_duplicate_partition_index_rejected(self):
        outcomes = fake_outcomes([0, 1, 1, 2])
        with pytest.raises(ExecutionError, match="out of order"):
            list(ordered_partition_outcomes(index_outcomes(outcomes)))

    def test_unsorted_partition_indices_rejected(self):
        outcomes = fake_outcomes([0, 2, 1, 3])
        with pytest.raises(ExecutionError, match="out of order"):
            list(ordered_partition_outcomes(index_outcomes(outcomes)))

    def test_empty_units_are_transparent(self):
        outcomes = fake_outcomes(list(range(4)), unit_size=2)
        outcomes.append({"unit": len(outcomes), "partitions": []})
        merged = [
            outcome["partition"]
            for outcome in ordered_partition_outcomes(index_outcomes(outcomes))
        ]
        assert merged == [0, 1, 2, 3]


QUERY = (
    "SELECT X.name, Y.date FROM quote CLUSTER BY name SEQUENCE BY date "
    "AS (X, Y) WHERE Y.price > 1.01 * X.price"
)

# Cluster-key distributions hypothesis explores: empty tables, one
# giant partition, many singletons, arbitrary skew.
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),  # cluster key (skewable)
        st.floats(min_value=1.0, max_value=200.0, allow_nan=False, width=32),
    ),
    min_size=0,
    max_size=60,
)


class TestEndToEndProperty:
    @settings(max_examples=25, deadline=None)
    @given(rows=rows_strategy, workers=st.sampled_from([2, 3, 4]))
    def test_parallel_equals_serial_for_any_distribution(self, rows, workers):
        table = Table(
            "quote",
            Schema([("name", "str"), ("date", "int"), ("price", "float")]),
        )
        next_date: dict[int, int] = {}
        for key, price in rows:
            date = next_date.get(key, 0)
            next_date[key] = date + 1
            table.insert(
                {"name": f"K{key}", "date": date, "price": float(price)}
            )
        catalog = Catalog([table])

        def run(workers):
            executor = Executor(
                catalog,
                domains=AttributeDomains.prices(),
                workers=workers,
                parallel_mode="thread",
            )
            return executor.execute_with_report(QUERY)

        r0, rep0 = run(1)
        r1, rep1 = run(workers)
        assert r0.rows == r1.rows
        assert rep0.predicate_tests == rep1.predicate_tests
        assert rep0.clusters == rep1.clusters
        assert rep0.matches == rep1.matches
        assert r0.diagnostics.to_dict() == r1.diagnostics.to_dict()

    def test_admitted_partitions_carry_their_merge_index(self):
        partitions = [
            Partition(index=i, key=(f"K{i}",), rows=[]) for i in range(10)
        ]
        units = split_partitions(partitions, 3)
        seen = [p.index for unit in units for p in unit.partitions]
        assert seen == list(range(10))
