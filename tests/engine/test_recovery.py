"""Checkpoint store, pattern fingerprints, and snapshot/restore units."""

import dataclasses
import os

import pytest

from repro import failpoints
from repro.errors import CheckpointCorrupt, FailpointError, RecoveryError
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import comparison
from repro.pattern.spec import PatternElement, PatternSpec
from repro.recovery import (
    CheckpointStore,
    MatcherSnapshot,
    pattern_fingerprint,
    restore_matcher,
    snapshot_matcher,
)
from repro.resilience import Diagnostics, ResourceLimits
from tests.conftest import PREV, PRICE, price_predicate, price_rows

RISE = price_predicate(comparison(PRICE, ">", PREV), label="rise")
FALL = price_predicate(comparison(PRICE, "<", PREV), label="fall")


def compiled(*defs):
    return compile_pattern(
        PatternSpec([PatternElement(n, p, star=s) for n, p, s in defs])
    )


PATTERN = compiled(("Y", RISE, True), ("Z", FALL, False))


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save({"offset": 42, "payload": [1, 2, 3]})
        assert store.load() == {"offset": 42, "payload": [1, 2, 3]}

    def test_exists(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        assert not store.exists()
        store.save("state")
        assert store.exists()

    def test_missing_checkpoint_raises_recovery_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        with pytest.raises(RecoveryError, match="no checkpoint"):
            store.load()

    def test_rotation_keeps_previous(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("first")
        store.save("second")
        assert os.path.exists(store.previous_path)
        assert store.load() == "second"

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("first")
        store.save("second")
        with open(store.path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\xff")
        diagnostics = Diagnostics()
        assert store.load(diagnostics=diagnostics) == "first"
        assert any("corrupt" in w for w in diagnostics.warnings)
        assert any("at-least-once" in w for w in diagnostics.warnings)

    def test_all_corrupt_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("first")
        store.save("second")
        for path in (store.path, store.previous_path):
            with open(path, "r+b") as handle:
                handle.seek(-1, os.SEEK_END)
                handle.write(b"\xff")
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            store.load()

    def test_truncated_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("state")
        with open(store.path, "rb") as handle:
            data = handle.read()
        with open(store.path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(CheckpointCorrupt, match="truncated"):
            store.load()

    def test_bad_magic(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("state")
        with open(store.path, "r+b") as handle:
            handle.write(b"XXXX")
        with pytest.raises(CheckpointCorrupt, match="magic"):
            store.load()

    def test_unsupported_version(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("state")
        with open(store.path, "r+b") as handle:
            handle.seek(4)
            handle.write(b"\xff\xff")
        with pytest.raises(CheckpointCorrupt, match="version"):
            store.load()

    def test_save_leaves_no_temp_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("state")
        assert not os.path.exists(store.path + ".tmp")

    def test_keep_previous_false(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", keep_previous=False)
        store.save("first")
        store.save("second")
        assert not os.path.exists(store.previous_path)
        assert store.load() == "second"


class TestCrashConsistency:
    """Failpoint-driven 'kill -9 at the worst moment' races, made
    deterministic: every interrupted save must leave a loadable store."""

    @pytest.fixture(autouse=True)
    def _clean_failpoints(self):
        failpoints.reset()
        yield
        failpoints.reset()

    def test_torn_temp_write_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save("first")
        with failpoints.scoped("checkpoint.write=torn*1"):
            store.save("second")  # frame truncated on disk
        diagnostics = Diagnostics()
        assert store.load(diagnostics=diagnostics) == "first"
        assert any("truncated" in w or "corrupt" in w for w in diagnostics.warnings)
        # A later healthy save fully recovers the store.
        store.save("third")
        assert store.load() == "third"

    def test_lost_fsync_is_silent_when_no_crash_follows(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        with failpoints.scoped("checkpoint.fsync=skip"):
            store.save("state")
            assert failpoints.fires("checkpoint.fsync") == 1
        assert store.load() == "state"

    def test_crash_between_rotation_and_final_rename(self, tmp_path):
        # The .prev rotation happened but the new file never landed: the
        # current path is GONE, and recovery must come from .prev.
        store = CheckpointStore(tmp_path / "ck")
        store.save("first")
        store.save("second")
        with failpoints.scoped("checkpoint.rename=raise"):
            with pytest.raises(FailpointError):
                store.save("third")
        assert not os.path.exists(store.path)
        assert os.path.exists(store.previous_path)
        diagnostics = Diagnostics()
        assert store.load(diagnostics=diagnostics) == "second"
        assert any("fallback" in w for w in diagnostics.warnings)
        # The interrupted store accepts and serves subsequent saves.
        store.save("fourth")
        assert store.load() == "fourth"

    def test_torn_first_ever_save_raises_cleanly(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        with failpoints.scoped("checkpoint.write=torn*1"):
            store.save("only")
        with pytest.raises(CheckpointCorrupt):
            store.load()


class TestPatternFingerprint:
    CONFIG = dict(
        trim=True, overflow="raise", max_stream_buffer=None, extra_lookback=0
    )

    def test_stable_across_recompiles(self):
        again = compiled(("Y", RISE, True), ("Z", FALL, False))
        assert pattern_fingerprint(
            PATTERN, **self.CONFIG
        ) == pattern_fingerprint(again, **self.CONFIG)

    def test_codegen_mode_excluded(self):
        interpreted = dataclasses.replace(PATTERN, use_codegen=False)
        assert pattern_fingerprint(
            PATTERN, **self.CONFIG
        ) == pattern_fingerprint(interpreted, **self.CONFIG)

    def test_different_pattern_diverges(self):
        other = compiled(("Y", FALL, True), ("Z", RISE, False))
        assert pattern_fingerprint(
            PATTERN, **self.CONFIG
        ) != pattern_fingerprint(other, **self.CONFIG)

    def test_different_config_diverges(self):
        base = pattern_fingerprint(PATTERN, **self.CONFIG)
        changed = dict(self.CONFIG, overflow="restart")
        assert base != pattern_fingerprint(PATTERN, **changed)


class TestSnapshotRestore:
    def test_mid_stream_round_trip_continues_identically(self):
        rows = price_rows(1, 2, 3, 2, 1, 2, 3, 4, 2, 5, 6, 1)
        reference = OpsStreamMatcher(PATTERN)
        out_ref = []
        for row in rows:
            out_ref.extend(reference.push(row))
        out_ref.extend(reference.finish())

        matcher = OpsStreamMatcher(PATTERN)
        out = []
        for index, row in enumerate(rows):
            out.extend(matcher.push(row))
            if index == 5:
                matcher = OpsStreamMatcher.restore(matcher.snapshot(), PATTERN)
        out.extend(matcher.finish())
        assert out == out_ref

    def test_fingerprint_mismatch_rejected(self):
        matcher = OpsStreamMatcher(PATTERN)
        matcher.push({"price": 5.0})
        snapshot = matcher.snapshot()
        other = compiled(("Y", FALL, True), ("Z", RISE, False))
        with pytest.raises(RecoveryError, match="different pattern"):
            OpsStreamMatcher.restore(snapshot, other)

    def test_config_mismatch_rejected(self):
        matcher = OpsStreamMatcher(PATTERN, overflow="raise")
        snapshot = matcher.snapshot()
        with pytest.raises(RecoveryError, match="different pattern"):
            OpsStreamMatcher.restore(snapshot, PATTERN, overflow="restart")

    def test_unsupported_snapshot_version(self):
        matcher = OpsStreamMatcher(PATTERN)
        snapshot = dataclasses.replace(matcher.snapshot(), version=99)
        with pytest.raises(RecoveryError, match="version 99"):
            OpsStreamMatcher.restore(snapshot, PATTERN)

    def test_budget_spend_carries_over(self):
        limits = ResourceLimits(max_matches=2)
        matcher = OpsStreamMatcher(PATTERN, limits=limits)
        emitted = []
        for row in price_rows(1, 2, 1):
            emitted.extend(matcher.push(row))
        assert len(emitted) == 1
        restored = OpsStreamMatcher.restore(
            matcher.snapshot(), PATTERN, limits=limits
        )
        for row in price_rows(2, 1, 2, 1, 2, 1):
            emitted.extend(restored.push(row))
        emitted.extend(restored.finish())
        # max_matches=2 spans the restore: one before, one after, capped.
        assert len(emitted) == 2
        assert restored.tripped is not None

    def test_pending_matches_survive_restore(self):
        matcher = OpsStreamMatcher(PATTERN)
        rows = price_rows(1, 2, 1)
        fresh = []
        for row in rows:
            fresh.extend(matcher.push(row))
        assert fresh  # the match completed and was drained
        # Simulate a crash after the match was recorded but before the
        # runner delivered it: rebuild the snapshot with _emitted rolled
        # back so the match is pending again.
        matcher2 = OpsStreamMatcher(PATTERN)
        for row in rows:
            matcher2.push(row)
        matcher2._emitted = 0
        snapshot = snapshot_matcher(matcher2)
        assert len(snapshot.pending_matches) == 1
        restored = restore_matcher(snapshot, PATTERN)
        redelivered = restored.finish()
        assert redelivered == fresh

    def test_high_water_mark_preserved(self):
        matcher = OpsStreamMatcher(PATTERN)
        emitted = []
        for row in price_rows(1, 2, 1, 5, 6, 2):
            emitted.extend(matcher.push(row))
        assert matcher.emitted_high_water == emitted[-1].end
        restored = OpsStreamMatcher.restore(matcher.snapshot(), PATTERN)
        assert restored.emitted_high_water == matcher.emitted_high_water

    def test_diagnostics_travel_with_snapshot(self):
        matcher = OpsStreamMatcher(PATTERN)
        matcher.diagnostics.warn("pre-crash warning")
        restored = OpsStreamMatcher.restore(matcher.snapshot(), PATTERN)
        assert "pre-crash warning" in restored.diagnostics.warnings

    def test_snapshot_is_plain_data(self):
        matcher = OpsStreamMatcher(PATTERN)
        matcher.push({"price": 5.0})
        snapshot = matcher.snapshot()
        assert isinstance(snapshot, MatcherSnapshot)
        import pickle

        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
