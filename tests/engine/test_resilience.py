"""The resilience layer: policies, limits, budgets, graceful degradation."""

from __future__ import annotations

import pytest

from repro.engine.catalog import Catalog
from repro.engine.cluster import clusters_of
from repro.engine.executor import Executor
from repro.engine.table import Schema, Table
from repro.errors import LimitExceeded, PlanningError
from repro.match.backtracking import BacktrackingMatcher
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.compiler import compile_pattern, degraded_pattern
from repro.pattern.predicates import ElementPredicate, ResidualCondition, comparison
from repro.pattern.spec import PatternElement, PatternSpec
from repro.resilience import (
    Budget,
    Diagnostics,
    ErrorPolicy,
    ResourceLimits,
)
from tests.conftest import PREV, PRICE, price_predicate

RISE = price_predicate(comparison(PRICE, ">", PREV))
FALL = price_predicate(comparison(PRICE, "<", PREV))


def price_rows(*prices):
    return [{"price": float(p)} for p in prices]


def rise_fall_pattern(star_fall=False):
    return compile_pattern(
        PatternSpec(
            [
                PatternElement("A", RISE),
                PatternElement("B", FALL, star=star_fall),
            ]
        )
    )


#: Alternating up/down prices — a match every two rows.
ZIGZAG = price_rows(*(10 + (i % 2) for i in range(40)))


class FakeClock:
    """A controllable monotonic clock: advances by ``tick`` per call."""

    def __init__(self, tick: float = 0.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


class TestErrorPolicy:
    def test_coerce_string(self):
        assert ErrorPolicy.coerce("skip") is ErrorPolicy.SKIP
        assert ErrorPolicy.coerce("RAISE") is ErrorPolicy.RAISE
        assert ErrorPolicy.coerce(ErrorPolicy.COLLECT) is ErrorPolicy.COLLECT

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown error policy"):
            ErrorPolicy.coerce("explode")

    def test_lenient(self):
        assert not ErrorPolicy.RAISE.lenient
        assert ErrorPolicy.SKIP.lenient and ErrorPolicy.COLLECT.lenient


class TestResourceLimits:
    def test_defaults_unbounded(self):
        limits = ResourceLimits()
        assert not limits.bounded

    def test_bounded_when_any_set(self):
        assert ResourceLimits(max_matches=5).bounded
        assert ResourceLimits(wall_clock_deadline=0.5).bounded
        assert ResourceLimits(max_stream_buffer=64).bounded

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceLimits(max_matches=-1)
        with pytest.raises(ValueError):
            ResourceLimits(wall_clock_deadline=-0.1)


class TestDiagnostics:
    def test_clean_by_default(self):
        assert Diagnostics().ok

    def test_quarantine_and_summary(self):
        diag = Diagnostics()
        diag.quarantine("data.csv", 7, "bad date", ("x", "y"))
        diag.warn("something odd")
        diag.record_limit("max_matches (3) reached")
        assert not diag.ok
        assert diag.limit_hit
        text = diag.summary()
        assert "data.csv:7: bad date" in text
        assert "warning: something odd" in text
        assert "limit exceeded: max_matches" in text

    def test_merge(self):
        a, b = Diagnostics(), Diagnostics()
        b.quarantine("f", 1, "r")
        b.record_downgrade("fell back")
        a.merge(b)
        assert len(a.quarantined) == 1 and a.degraded


class TestBudget:
    def test_deadline_trips_via_step(self):
        clock = FakeClock(tick=0.01)
        budget = Budget(
            ResourceLimits(wall_clock_deadline=0.5), clock=clock, check_every=4
        )
        steps = 0
        while not budget.step():
            steps += 1
            assert steps < 10_000
        assert "wall_clock_deadline" in budget.tripped

    def test_step_is_cheap_between_checks(self):
        calls = []

        def clock():
            calls.append(None)
            return 0.0

        budget = Budget(
            ResourceLimits(wall_clock_deadline=10.0), clock=clock, check_every=100
        )
        baseline = len(calls)  # one call from the constructor
        for _ in range(99):
            budget.step()
        assert len(calls) == baseline
        budget.step()
        assert len(calls) == baseline + 1

    def test_match_cap_keeps_the_capping_match(self):
        budget = Budget(ResourceLimits(max_matches=2))
        assert not budget.add_match()
        assert budget.add_match()  # the second match trips but is kept
        assert budget.matches == 2

    def test_zero_match_cap_yields_nothing(self):
        budget = Budget(ResourceLimits(max_matches=0))
        assert budget.tripped is not None  # tripped up front, no work done

    def test_rows_cap(self):
        budget = Budget(ResourceLimits(max_rows_scanned=100))
        assert not budget.add_rows(100)
        assert budget.add_rows(1)
        assert "max_rows_scanned" in budget.tripped

    def test_trip_records_diagnostic_once(self):
        diag = Diagnostics()
        budget = Budget(ResourceLimits(max_matches=1), diag)
        budget.trip("reason")
        budget.trip("other")
        assert diag.limits_hit == ["reason"]


class TestMatcherBudgets:
    """Every matcher stops at the cap and returns partial results."""

    @pytest.mark.parametrize(
        "matcher",
        [NaiveMatcher(), OpsStarMatcher(), BacktrackingMatcher(), OpsMatcher()],
        ids=["naive", "ops-star", "backtracking", "ops-nonstar"],
    )
    def test_max_matches_partial(self, matcher):
        pattern = rise_fall_pattern()
        unlimited = matcher.find_matches(ZIGZAG, pattern)
        assert len(unlimited) > 3
        budget = Budget(ResourceLimits(max_matches=3))
        limited = matcher.find_matches(ZIGZAG, pattern, budget=budget)
        assert limited == unlimited[:3]
        assert "max_matches" in budget.tripped

    @pytest.mark.parametrize(
        "matcher",
        [NaiveMatcher(), OpsStarMatcher(), BacktrackingMatcher(), OpsMatcher()],
        ids=["naive", "ops-star", "backtracking", "ops-nonstar"],
    )
    def test_deadline_stops_scan(self, matcher):
        pattern = rise_fall_pattern()
        clock = FakeClock(tick=1.0)  # deadline passes on the first check
        budget = Budget(
            ResourceLimits(wall_clock_deadline=0.5), clock=clock, check_every=1
        )
        partial = matcher.find_matches(ZIGZAG, pattern, budget=budget)
        assert budget.tripped is not None
        assert len(partial) < len(matcher.find_matches(ZIGZAG, pattern))

    def test_star_pattern_budget(self):
        pattern = rise_fall_pattern(star_fall=True)
        rows = price_rows(*(10 + (i % 5) for i in range(50)))
        budget = Budget(ResourceLimits(max_matches=2))
        matches = OpsStarMatcher().find_matches(rows, pattern, budget=budget)
        assert len(matches) == 2


class TestStreamingBufferCap:
    def opaque_pattern(self):
        # A residual condition defeats static offset bounding, so the
        # stream matcher cannot trim its look-back window.
        residual = ElementPredicate(
            [ResidualCondition(lambda ctx: True, "always")]
        )
        return compile_pattern(
            PatternSpec(
                [
                    PatternElement("A", residual),
                    PatternElement("B", price_predicate(comparison(PRICE, "<", 0))),
                ]
            )
        )

    def test_opaque_pattern_overflows(self):
        matcher = OpsStreamMatcher(
            self.opaque_pattern(),
            limits=ResourceLimits(max_stream_buffer=8),
        )
        with pytest.raises(LimitExceeded) as excinfo:
            for price in range(100):
                matcher.push({"price": float(price)})
        assert excinfo.value.reason == "max_stream_buffer"
        assert matcher.diagnostics.limit_hit

    def test_restart_overflow_bounds_buffer(self):
        matcher = OpsStreamMatcher(
            self.opaque_pattern(),
            limits=ResourceLimits(max_stream_buffer=8),
            overflow="restart",
        )
        for price in range(100):
            matcher.push({"price": float(price)})
        assert matcher.buffered_rows <= 8
        assert matcher.diagnostics.limit_hit
        assert matcher.diagnostics.warnings

    def test_restart_still_finds_later_matches(self):
        # Pattern: a fall; matches keep appearing after overflow restarts.
        pattern = compile_pattern(
            PatternSpec(
                [
                    PatternElement(
                        "A",
                        ElementPredicate(
                            [ResidualCondition(lambda ctx: True, "always")]
                        ),
                    ),
                    PatternElement("B", FALL),
                ]
            )
        )
        matcher = OpsStreamMatcher(
            pattern,
            limits=ResourceLimits(max_stream_buffer=4),
            overflow="restart",
        )
        emitted = []
        for price in (1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1):
            emitted.extend(matcher.push({"price": float(price)}))
        emitted.extend(matcher.finish())
        assert emitted  # overflow restarts did not silence the stream
        assert matcher.buffered_rows <= 4

    def test_bounded_patterns_unaffected(self):
        pattern = rise_fall_pattern()
        matcher = OpsStreamMatcher(
            pattern, limits=ResourceLimits(max_stream_buffer=8)
        )
        for row in ZIGZAG:
            matcher.push(row)
        matches = matcher.matches + matcher.finish()
        assert matches == OpsStarMatcher().find_matches(ZIGZAG, pattern)

    def test_deadline_quiesces_push(self):
        pattern = rise_fall_pattern()
        matcher = OpsStreamMatcher(
            pattern, limits=ResourceLimits(wall_clock_deadline=0.5)
        )
        # Force immediate expiry: a fake clock already past the deadline,
        # consulted on every step.
        matcher._budget._clock = FakeClock(tick=1.0)
        matcher._budget._deadline = 0.5
        matcher._budget._stride = 1
        matcher._budget._countdown = 1
        for row in ZIGZAG:
            matcher.push(row)
        assert matcher.tripped is not None
        assert len(matcher.matches) < len(
            OpsStarMatcher().find_matches(ZIGZAG, pattern)
        )


def quote_table(rows):
    table = Table("quote", Schema([("name", "str"), ("day", "int"), ("price", "float")]))
    table.insert_many(rows)
    return table


def quote_row(name, day, price):
    return {"name": name, "day": day, "price": float(price)}


class TestClusterIntegrity:
    def shuffled_rows(self):
        return [
            quote_row("IBM", day, price)
            for day, price in [(3, 12.0), (1, 10.0), (2, 11.0)]
        ]

    def test_strict_policy_sorts_silently(self):
        diag = Diagnostics()
        table = quote_table(self.shuffled_rows())
        [(_, rows)] = clusters_of(
            table, ["name"], ["day"], policy="raise", diagnostics=diag
        )
        assert [row["day"] for row in rows] == [1, 2, 3]
        assert diag.ok

    def test_lenient_policy_warns_on_out_of_order(self):
        diag = Diagnostics()
        table = quote_table(self.shuffled_rows())
        [(_, rows)] = clusters_of(
            table, ["name"], ["day"], policy="collect", diagnostics=diag
        )
        assert [row["day"] for row in rows] == [1, 2, 3]
        assert any("out of order" in warning for warning in diag.warnings)

    def test_skip_drops_duplicate_keys(self):
        diag = Diagnostics()
        table = quote_table(
            [
                quote_row("IBM", 1, 10.0),
                quote_row("IBM", 2, 11.0),
                quote_row("IBM", 2, 99.0),
            ]
        )
        [(_, rows)] = clusters_of(
            table, ["name"], ["day"], policy="skip", diagnostics=diag
        )
        assert [row["price"] for row in rows] == [10.0, 11.0]  # first kept
        assert len(diag.quarantined) == 1
        assert "duplicate SEQUENCE BY key" in diag.quarantined[0].reason

    def test_collect_keeps_duplicates_with_warning(self):
        diag = Diagnostics()
        table = quote_table(
            [
                quote_row("IBM", 1, 10.0),
                quote_row("IBM", 1, 11.0),
            ]
        )
        [(_, rows)] = clusters_of(
            table, ["name"], ["day"], policy="collect", diagnostics=diag
        )
        assert len(rows) == 2
        assert any("duplicate" in warning for warning in diag.warnings)


STAR_QUERY = (
    "SELECT X.day FROM quote CLUSTER BY name SEQUENCE BY day "
    "AS (X, *Y, Z) "
    "WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price"
)


def sawtooth_catalog():
    prices = [10, 12, 11, 10, 9, 13, 12, 10, 14, 13, 15]
    return Catalog(
        [quote_table([quote_row("IBM", day, p) for day, p in enumerate(prices)])]
    )


class TestGracefulDegradation:
    def test_strict_policy_still_raises(self):
        executor = Executor(sawtooth_catalog(), matcher="ops-nonstar")
        with pytest.raises(PlanningError):
            executor.execute(STAR_QUERY)

    def test_matcher_mismatch_falls_back(self):
        catalog = sawtooth_catalog()
        degraded = Executor(catalog, matcher="ops-nonstar", policy="collect")
        result, report = degraded.execute_with_report(STAR_QUERY)
        reference = Executor(catalog, matcher="naive").execute(STAR_QUERY)
        assert result.rows == reference.rows
        assert report.degraded
        assert any("falling back" in d for d in result.diagnostics.downgrades)

    def test_compile_failure_falls_back(self, monkeypatch):
        def broken_compile(spec, use_equivalence=True, codegen=True):
            raise PlanningError("synthetic compile failure")

        monkeypatch.setattr(
            "repro.engine.executor.compile_pattern", broken_compile
        )
        catalog = sawtooth_catalog()
        executor = Executor(catalog, policy="skip")
        result, report = executor.execute_with_report(STAR_QUERY)
        monkeypatch.undo()
        reference = Executor(catalog, matcher="naive").execute(STAR_QUERY)
        assert result.rows == reference.rows
        assert report.pattern.degraded
        assert report.matcher == "naive"
        assert any("OPS compilation failed" in d for d in result.diagnostics.downgrades)

    def test_compile_failure_raises_under_strict(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.executor.compile_pattern",
            lambda spec, use_equivalence=True, codegen=True: (_ for _ in ()).throw(
                PlanningError("synthetic")
            ),
        )
        executor = Executor(sawtooth_catalog())
        with pytest.raises(PlanningError):
            executor.execute(STAR_QUERY)

    def test_degraded_pattern_shape(self):
        spec = PatternSpec(
            [PatternElement("A", RISE), PatternElement("B", FALL, star=True)]
        )
        plan = degraded_pattern(spec)
        assert plan.degraded and plan.m == 2
        assert plan.shift_next.shift == (0, 1, 2)
        assert plan.shift_next.next_ == (0, 0, 0)


class TestExecutorLimits:
    def test_max_matches_truncates(self):
        catalog = sawtooth_catalog()
        full = Executor(catalog).execute(STAR_QUERY)
        assert len(full) >= 2
        limited = Executor(
            catalog, limits=ResourceLimits(max_matches=1)
        ).execute(STAR_QUERY)
        assert limited.rows == full.rows[:1]
        assert limited.diagnostics.limit_hit

    def test_max_rows_scanned_skips_clusters(self):
        table = quote_table(
            [quote_row(name, day, 10 + day % 3) for name in ("A", "B", "C") for day in range(10)]
        )
        catalog = Catalog([table])
        result, report = Executor(
            catalog, limits=ResourceLimits(max_rows_scanned=15)
        ).execute_with_report(
            "SELECT X.day FROM quote CLUSTER BY name SEQUENCE BY day "
            "AS (X, Y) WHERE Y.price > X.price"
        )
        assert report.rows_scanned <= 15
        assert result.diagnostics.limit_hit

    def test_unlimited_execution_is_clean(self):
        result, report = Executor(sawtooth_catalog()).execute_with_report(STAR_QUERY)
        assert result.diagnostics.ok
        assert not report.limit_hit


class TestAccountingAgreement:
    """Regression: budget and report row accounting must agree."""

    def test_add_rows_rejects_the_overflowing_batch(self):
        # Check-then-charge: the batch that would exceed the limit trips
        # the budget and is NOT charged (the caller skips it).  The old
        # charge-then-check order left rows_scanned at 20 here while the
        # executor's report counted 10.
        budget = Budget(ResourceLimits(max_rows_scanned=15))
        assert not budget.add_rows(10)
        assert budget.add_rows(10)
        assert budget.rows_scanned == 10
        assert "max_rows_scanned" in budget.tripped

    def test_report_rows_scanned_counts_whole_clusters(self):
        table = quote_table(
            [
                quote_row(name, day, 10 + day % 3)
                for name in ("A", "B", "C")
                for day in range(10)
            ]
        )
        result, report = Executor(
            Catalog([table]), limits=ResourceLimits(max_rows_scanned=15)
        ).execute_with_report(
            "SELECT X.day FROM quote CLUSTER BY name SEQUENCE BY day "
            "AS (X, Y) WHERE Y.price > X.price"
        )
        # One 10-row cluster fits under the 15-row cap; the second is
        # rejected whole.  Report and budget agree on exactly 10.
        assert report.rows_scanned == 10
        assert result.diagnostics.limit_hit


class TestExecuteWrapperPassthrough:
    """Regression: the one-shot execute() forwards fallback and codegen."""

    def test_fallback_none_disables_degradation(self):
        from repro.engine.executor import execute

        with pytest.raises(PlanningError):
            execute(
                STAR_QUERY,
                sawtooth_catalog(),
                matcher="ops-nonstar",
                policy="collect",
                fallback=None,
            )

    def test_fallback_choice_is_forwarded(self):
        from repro.engine.executor import execute

        result = execute(
            STAR_QUERY,
            sawtooth_catalog(),
            matcher="ops-nonstar",
            policy="collect",
            fallback="backtracking",
        )
        assert len(result) >= 2

    def test_codegen_flag_is_forwarded(self):
        from repro.engine.executor import execute

        fast = execute(STAR_QUERY, sawtooth_catalog())
        interpreted = execute(STAR_QUERY, sawtooth_catalog(), codegen=False)
        assert fast.rows == interpreted.rows


class TestMatcherNameNormalization:
    """Regression: instance-passed matchers report their registry key."""

    def test_instance_normalizes_to_registry_key(self):
        _, report = Executor(
            sawtooth_catalog(), matcher=OpsStarMatcher()
        ).execute_with_report(STAR_QUERY)
        assert report.matcher == "ops"

    def test_configured_instance_keeps_its_key(self):
        _, report = Executor(
            sawtooth_catalog(), matcher=NaiveMatcher(overlapping=True)
        ).execute_with_report(STAR_QUERY)
        assert report.matcher == "naive"

    def test_subclass_keeps_its_own_name(self):
        from repro.engine.executor import _resolve_matcher

        class TracingMatcher(NaiveMatcher):
            pass

        name, matcher = _resolve_matcher(TracingMatcher())
        assert name == "TracingMatcher"
        assert isinstance(matcher, TracingMatcher)
