"""The SQL-TS executor end to end: projection, clustering, reports."""

import datetime as dt

import pytest

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor, execute
from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.match.base import Instrumentation
from repro.pattern.predicates import AttributeDomains

DOMAINS = AttributeDomains.prices()


def quote_catalog(rows):
    table = Table("quote", [("name", "str"), ("date", "date"), ("price", "float")])
    table.insert_many(rows)
    return Catalog([table])


def d(day, month=1):
    return dt.date(1999, month, day)


SPIKE_ROWS = [
    # IBM: spike day 26 (+20%), crash day 27 (-25%)
    {"name": "IBM", "date": d(25), "price": 100.0},
    {"name": "IBM", "date": d(26), "price": 120.0},
    {"name": "IBM", "date": d(27), "price": 90.0},
    # INTC: no spike
    {"name": "INTC", "date": d(25), "price": 60.0},
    {"name": "INTC", "date": d(26), "price": 61.0},
    {"name": "INTC", "date": d(27), "price": 62.0},
]

EXAMPLE1 = """
SELECT X.name
FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z)
WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
"""


class TestBasicExecution:
    def test_example1_finds_the_spike(self):
        catalog = quote_catalog(SPIKE_ROWS)
        result = execute(EXAMPLE1, catalog, domains=DOMAINS)
        assert result.columns == ("X.name",)
        assert result.rows == (("IBM",),)

    def test_rows_arrive_unsorted(self):
        catalog = quote_catalog(list(reversed(SPIKE_ROWS)))
        result = execute(EXAMPLE1, catalog, domains=DOMAINS)
        assert result.rows == (("IBM",),)

    def test_aliases_name_output_columns(self):
        catalog = quote_catalog(SPIKE_ROWS)
        result = execute(
            """
            SELECT X.date AS spike_eve, Y.price AS peak
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z)
            WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
            """,
            catalog,
            domains=DOMAINS,
        )
        assert result.columns == ("spike_eve", "peak")
        assert result.rows == ((d(25), 120.0),)

    def test_navigation_in_select(self):
        catalog = quote_catalog(SPIKE_ROWS)
        result = execute(
            """
            SELECT Y.previous.price, Y.NEXT.price
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z)
            WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
            """,
            catalog,
            domains=DOMAINS,
        )
        assert result.rows == ((100.0, 90.0),)

    def test_navigation_off_cluster_is_null(self):
        catalog = quote_catalog(SPIKE_ROWS)
        result = execute(
            """
            SELECT X.previous.price
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z)
            WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
            """,
            catalog,
            domains=DOMAINS,
        )
        assert result.rows == ((None,),)

    def test_unknown_table(self):
        with pytest.raises(ExecutionError):
            execute(EXAMPLE1, Catalog([]), domains=DOMAINS)

    def test_unknown_matcher_name(self):
        with pytest.raises(ExecutionError):
            Executor(quote_catalog(SPIKE_ROWS), matcher="quantum")


class TestClusterFilter:
    ROWS = SPIKE_ROWS + [
        {"name": "GE", "date": d(25), "price": 100.0},
        {"name": "GE", "date": d(26), "price": 120.0},
        {"name": "GE", "date": d(27), "price": 90.0},
    ]

    def test_hoisted_filter_restricts_clusters(self):
        catalog = quote_catalog(self.ROWS)
        result, report = Executor(catalog, domains=DOMAINS).execute_with_report(
            """
            SELECT X.name
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z)
            WHERE X.name = 'IBM'
              AND Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
            """
        )
        assert result.rows == (("IBM",),)
        assert report.clusters == 3
        assert report.clusters_searched == 1

    def test_filter_saves_predicate_tests(self):
        catalog = quote_catalog(self.ROWS)
        inst = Instrumentation()
        Executor(catalog, domains=DOMAINS).execute(
            """
            SELECT X.name
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z)
            WHERE X.name = 'NONESUCH'
              AND Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
            """,
            inst,
        )
        assert inst.tests == 0


class TestStarQueriesEndToEnd:
    FALLING = [
        {"name": "IBM", "date": d(25), "price": 100.0},
        {"name": "IBM", "date": d(26), "price": 80.0},
        {"name": "IBM", "date": d(27), "price": 60.0},
        {"name": "IBM", "date": d(28), "price": 40.0},
        {"name": "IBM", "date": d(29), "price": 45.0},
    ]

    def test_example2_maximal_falling_period(self):
        catalog = quote_catalog(self.FALLING)
        result = execute(
            """
            SELECT X.name, X.date AS start_date, Z.previous.date AS end_date
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y, Z)
            WHERE Y.price < Y.previous.price
              AND Z.previous.price < 0.5 * X.price
            """,
            catalog,
            domains=DOMAINS,
        )
        assert result.rows == ((("IBM"), d(25), d(28)),)

    def test_first_last_in_select(self):
        catalog = quote_catalog(self.FALLING)
        result = execute(
            """
            SELECT FIRST(Y).price, LAST(Y).price
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y, Z)
            WHERE Y.price < Y.previous.price
              AND Z.previous.price < 0.5 * X.price
            """,
            catalog,
            domains=DOMAINS,
        )
        assert result.rows == ((80.0, 40.0),)


class TestReport:
    def test_report_fields(self):
        catalog = quote_catalog(SPIKE_ROWS)
        result, report = Executor(catalog, domains=DOMAINS).execute_with_report(
            EXAMPLE1
        )
        assert report.matcher == "ops"
        assert report.clusters == 2
        assert report.rows_scanned == 6
        assert report.matches == len(result) == 1
        assert report.predicate_tests > 0
        assert report.pattern.m == 3

    def test_matcher_instance_accepted(self):
        from repro.match.naive import NaiveMatcher

        catalog = quote_catalog(SPIKE_ROWS)
        executor = Executor(catalog, domains=DOMAINS, matcher=NaiveMatcher())
        result = executor.execute(EXAMPLE1)
        assert result.rows == (("IBM",),)

    def test_naive_and_ops_agree_through_executor(self):
        catalog = quote_catalog(SPIKE_ROWS)
        ops = Executor(catalog, domains=DOMAINS, matcher="ops").execute(EXAMPLE1)
        naive = Executor(catalog, domains=DOMAINS, matcher="naive").execute(EXAMPLE1)
        assert ops == naive

    def test_prepare_without_execution(self):
        catalog = quote_catalog(SPIKE_ROWS)
        analyzed, compiled = Executor(catalog, domains=DOMAINS).prepare(EXAMPLE1)
        assert analyzed.table == "quote"
        assert compiled.m == 3
