"""The UDA substrate: standard aggregates + SQL-TS as a UDA."""

import pytest

from repro.engine.aggregates import (
    AvgAggregate,
    CountAggregate,
    FirstAggregate,
    LastAggregate,
    MaxAggregate,
    MinAggregate,
    PatternSearchAggregate,
    apply_aggregate,
)
from repro.errors import ExecutionError
from repro.match.base import Instrumentation
from repro.match.ops_star import OpsStarMatcher
from tests.conftest import price_rows


ROWS = [{"v": 3}, {"v": 1}, {"v": 2}]


class TestStandardAggregates:
    @pytest.mark.parametrize(
        "aggregate_cls, expected",
        [
            (FirstAggregate, [3]),
            (LastAggregate, [2]),
            (CountAggregate, [3]),
            (MinAggregate, [1]),
            (MaxAggregate, [3]),
            (AvgAggregate, [2.0]),
        ],
    )
    def test_values(self, aggregate_cls, expected):
        assert apply_aggregate(aggregate_cls("v"), ROWS) == expected

    @pytest.mark.parametrize(
        "aggregate_cls",
        [FirstAggregate, LastAggregate, MinAggregate, MaxAggregate, AvgAggregate],
    )
    def test_empty_stream_yields_nothing(self, aggregate_cls):
        assert apply_aggregate(aggregate_cls("v"), []) == []

    def test_count_empty_is_zero(self):
        assert apply_aggregate(CountAggregate("v"), []) == [0]

    def test_missing_column(self):
        with pytest.raises(ExecutionError):
            apply_aggregate(FirstAggregate("q"), ROWS)

    def test_initialize_resets_state(self):
        aggregate = CountAggregate("v")
        apply_aggregate(aggregate, ROWS)
        assert apply_aggregate(aggregate, ROWS[:1]) == [1]


class TestPatternSearchAggregate:
    def test_streams_tuples_and_emits_matches(self, example4_compiled):
        rows = price_rows(55, 50, 45, 49, 51, 60)
        instrumentation = Instrumentation()
        aggregate = PatternSearchAggregate(
            example4_compiled, OpsStarMatcher(), instrumentation
        )
        matches = apply_aggregate(aggregate, rows)
        direct = OpsStarMatcher().find_matches(rows, example4_compiled)
        assert matches == direct
        assert instrumentation.tests > 0

    def test_initialize_clears_buffer(self, example4_compiled):
        aggregate = PatternSearchAggregate(example4_compiled, OpsStarMatcher())
        apply_aggregate(aggregate, price_rows(55, 50, 45, 49, 51))
        # Second group: fresh buffer, no carryover.
        assert apply_aggregate(aggregate, price_rows(10, 11)) == []
        assert len(aggregate.buffered) == 2

    def test_iterate_emits_nothing_early(self, example4_compiled):
        aggregate = PatternSearchAggregate(example4_compiled, OpsStarMatcher())
        aggregate.initialize()
        assert list(aggregate.iterate({"price": 55.0})) == []


class TestStreamingPatternAggregate:
    def test_matches_stream_out_of_iterate(self, example4_compiled):
        from repro.engine.aggregates import StreamingPatternAggregate

        aggregate = StreamingPatternAggregate(example4_compiled)
        aggregate.initialize()
        rows = price_rows(55, 50, 45, 49, 51, 60)
        emitted = []
        for row in rows:
            emitted.extend(aggregate.iterate(row))
        emitted.extend(aggregate.terminate())
        assert emitted == OpsStarMatcher().find_matches(rows, example4_compiled)

    def test_agrees_with_batch_aggregate(self, example4_compiled):
        from repro.engine.aggregates import StreamingPatternAggregate

        rows = price_rows(55, 50, 45, 49, 51, 60, 55, 48, 44, 49, 50)
        batch = apply_aggregate(
            PatternSearchAggregate(example4_compiled, OpsStarMatcher()), rows
        )
        streaming = apply_aggregate(
            StreamingPatternAggregate(example4_compiled), rows
        )
        assert batch == streaming

    def test_window_stays_bounded(self, example4_compiled):
        import random

        from repro.engine.aggregates import StreamingPatternAggregate

        aggregate = StreamingPatternAggregate(example4_compiled)
        aggregate.initialize()
        rng = random.Random(31)
        value = 46.0
        peak = 0
        for _ in range(2000):
            value = max(35.0, min(60.0, value + rng.choice([-3.0, -1.0, 1.0, 3.0])))
            list(aggregate.iterate({"price": value}))
            peak = max(peak, aggregate.buffered_rows)
        assert peak <= 10


class TestAggregateTypeErrors:
    """Regression: mixed-type columns raise ExecutionError, not raw
    TypeError/ValueError, and the message names the column."""

    def test_avg_non_numeric_value(self):
        rows = [{"v": 1}, {"v": "oops"}]
        with pytest.raises(ExecutionError, match=r"AVG\(v\).*'oops'"):
            apply_aggregate(AvgAggregate("v"), rows)

    def test_avg_none_value(self):
        with pytest.raises(ExecutionError, match=r"AVG\(v\)"):
            apply_aggregate(AvgAggregate("v"), [{"v": None}])

    def test_avg_numeric_strings_still_convert(self):
        assert apply_aggregate(AvgAggregate("v"), [{"v": "3"}, {"v": 1}]) == [2.0]

    def test_min_mixed_types(self):
        rows = [{"v": 1}, {"v": "a"}]
        with pytest.raises(ExecutionError, match=r"MIN\(v\)"):
            apply_aggregate(MinAggregate("v"), rows)

    def test_max_mixed_types(self):
        rows = [{"v": 1}, {"v": "a"}]
        with pytest.raises(ExecutionError, match=r"MAX\(v\)"):
            apply_aggregate(MaxAggregate("v"), rows)

    def test_homogeneous_strings_compare_fine(self):
        rows = [{"v": "b"}, {"v": "a"}]
        assert apply_aggregate(MinAggregate("v"), rows) == ["a"]
        assert apply_aggregate(MaxAggregate("v"), rows) == ["b"]
