"""The executor's LRU plan cache: hits, eviction, degraded plans, bypass."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Schema, Table
from repro.errors import ExecutionError, PlanningError
from repro.pattern.predicates import AttributeDomains
from repro.sqlts.parser import parse_query


def quote_catalog():
    table = Table(
        "quote", Schema([("name", "str"), ("day", "int"), ("price", "float")])
    )
    prices = [10, 12, 11, 10, 9, 13, 12, 10, 14, 13, 15]
    table.insert_many(
        {"name": "IBM", "day": day, "price": float(p)}
        for day, p in enumerate(prices)
    )
    return Catalog([table])


def query(bound):
    return (
        "SELECT X.day FROM quote CLUSTER BY name SEQUENCE BY day "
        f"AS (X, Y) WHERE X.price > {bound} AND Y.price < X.price"
    )


RISE_FALL = query(0)


class TestPlanCacheHits:
    def test_repeat_execution_hits(self):
        executor = Executor(quote_catalog())
        first = executor.execute(RISE_FALL)
        second = executor.execute(RISE_FALL)
        assert first.rows == second.rows
        assert executor.plan_cache_misses == 1
        assert executor.plan_cache_hits == 1

    def test_hit_skips_reparsing(self, monkeypatch):
        import repro.engine.executor as executor_module

        calls = []
        real_parse = executor_module.parse_query

        def counting_parse(text):
            calls.append(text)
            return real_parse(text)

        monkeypatch.setattr(executor_module, "parse_query", counting_parse)
        executor = Executor(quote_catalog())
        for _ in range(3):
            executor.execute(RISE_FALL)
        assert len(calls) == 1

    def test_prepare_and_execute_share_the_cache(self):
        executor = Executor(quote_catalog())
        _, compiled = executor.prepare(RISE_FALL)
        _, report = executor.execute_with_report(RISE_FALL)
        assert report.pattern is compiled
        assert executor.plan_cache_hits == 1

    def test_distinct_queries_miss(self):
        executor = Executor(quote_catalog())
        executor.execute(query(0))
        executor.execute(query(1))
        assert executor.plan_cache_misses == 2
        assert executor.plan_cache_hits == 0


class TestPlanCacheEviction:
    def test_lru_eviction_order(self):
        executor = Executor(quote_catalog(), plan_cache_size=2)
        executor.execute(query(0))  # cache: [q0]
        executor.execute(query(1))  # cache: [q0, q1]
        executor.execute(query(0))  # hit; q0 becomes most recent
        executor.execute(query(2))  # evicts q1, the least recent
        hits = executor.plan_cache_hits
        executor.execute(query(0))  # still cached
        assert executor.plan_cache_hits == hits + 1
        misses = executor.plan_cache_misses
        executor.execute(query(1))  # was evicted -> miss
        assert executor.plan_cache_misses == misses + 1

    def test_size_zero_disables_caching(self):
        executor = Executor(quote_catalog(), plan_cache_size=0)
        executor.execute(RISE_FALL)
        executor.execute(RISE_FALL)
        assert executor.plan_cache_hits == 0
        assert executor.plan_cache_misses == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ExecutionError, match="plan_cache_size"):
            Executor(quote_catalog(), plan_cache_size=-1)


class TestPlanCacheKeying:
    def test_ast_queries_bypass_the_cache(self):
        executor = Executor(quote_catalog())
        parsed = parse_query(RISE_FALL)
        executor.execute(parsed)
        executor.execute(parsed)
        assert executor.plan_cache_hits == 0
        assert executor.plan_cache_misses == 0

    def test_domains_fingerprint(self):
        assert AttributeDomains.prices().fingerprint() == ("price",)
        assert AttributeDomains.none().fingerprint() == ()
        assert (
            AttributeDomains({"b", "a"}).fingerprint()
            == AttributeDomains({"a", "b"}).fingerprint()
        )


STAR_QUERY = (
    "SELECT X.day FROM quote CLUSTER BY name SEQUENCE BY day "
    "AS (X, *Y, Z) "
    "WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price"
)


class TestDegradedPlanCaching:
    def broken_compile(self, monkeypatch):
        def broken(spec, use_equivalence=True, codegen=True):
            raise PlanningError("synthetic compile failure")

        monkeypatch.setattr("repro.engine.executor.compile_pattern", broken)

    def test_downgrade_re_recorded_on_cache_hit(self, monkeypatch):
        self.broken_compile(monkeypatch)
        executor = Executor(quote_catalog(), policy="skip")
        _, first = executor.execute_with_report(STAR_QUERY)
        _, second = executor.execute_with_report(STAR_QUERY)
        assert first.degraded and second.degraded
        assert first.matcher == "naive" and second.matcher == "naive"
        assert executor.plan_cache_hits == 1  # the failure was cached

    def test_cached_failure_still_raises_under_strict(self, monkeypatch):
        self.broken_compile(monkeypatch)
        executor = Executor(quote_catalog())
        for _ in range(2):
            with pytest.raises(PlanningError, match="synthetic"):
                executor.execute(STAR_QUERY)

    def test_prepare_raises_cached_planning_error(self, monkeypatch):
        self.broken_compile(monkeypatch)
        executor = Executor(quote_catalog(), policy="skip")
        executor.execute(STAR_QUERY)  # caches the degraded entry
        with pytest.raises(PlanningError, match="synthetic"):
            executor.prepare(STAR_QUERY)
