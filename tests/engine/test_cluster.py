"""CLUSTER BY / SEQUENCE BY: the paper's Figure 1 behaviour."""

import datetime as dt

import pytest

from repro.engine.cluster import clusters_of
from repro.engine.table import Table
from repro.errors import ExecutionError


def quote_table(rows):
    table = Table("quote", [("name", "str"), ("date", "date"), ("price", "float")])
    table.insert_many(rows)
    return table


def d(day):
    return dt.date(1999, 1, day)


ROWS = [
    {"name": "INTC", "date": d(26), "price": 63.5},
    {"name": "IBM", "date": d(25), "price": 81.0},
    {"name": "INTC", "date": d(25), "price": 60.0},
    {"name": "IBM", "date": d(27), "price": 84.0},
    {"name": "IBM", "date": d(26), "price": 80.5},
    {"name": "INTC", "date": d(27), "price": 62.0},
]


class TestClustering:
    def test_groups_by_key_sorted_by_sequence(self):
        table = quote_table(ROWS)
        clusters = dict(clusters_of(table, ["name"], ["date"]))
        assert set(clusters) == {("INTC",), ("IBM",)}
        intc = clusters[("INTC",)]
        assert [row["price"] for row in intc] == [60.0, 63.5, 62.0]
        ibm = clusters[("IBM",)]
        assert [row["price"] for row in ibm] == [81.0, 80.5, 84.0]

    def test_cluster_order_is_first_appearance(self):
        table = quote_table(ROWS)
        keys = [key for key, _ in clusters_of(table, ["name"], ["date"])]
        assert keys == [("INTC",), ("IBM",)]

    def test_no_cluster_by_single_group(self):
        table = quote_table(ROWS)
        ((key, rows),) = list(clusters_of(table, [], ["date"]))
        assert key == ()
        assert len(rows) == 6
        assert [r["date"] for r in rows] == sorted(r["date"] for r in rows)

    def test_no_sequence_by_preserves_insert_order(self):
        table = quote_table(ROWS)
        clusters = dict(clusters_of(table, ["name"], []))
        assert [row["date"].day for row in clusters[("INTC",)]] == [26, 25, 27]

    def test_multi_attribute_cluster_key(self):
        table = Table("t", [("a", "str"), ("b", "int"), ("v", "float")])
        table.insert_many(
            [
                {"a": "x", "b": 1, "v": 1.0},
                {"a": "x", "b": 2, "v": 2.0},
                {"a": "x", "b": 1, "v": 3.0},
            ]
        )
        clusters = dict(clusters_of(table, ["a", "b"], []))
        assert set(clusters) == {("x", 1), ("x", 2)}
        assert len(clusters[("x", 1)]) == 2

    def test_unknown_column_rejected(self):
        table = quote_table(ROWS)
        with pytest.raises(ExecutionError):
            list(clusters_of(table, ["ticker"], ["date"]))
        with pytest.raises(ExecutionError):
            list(clusters_of(table, ["name"], ["when"]))

    def test_empty_table(self):
        table = quote_table([])
        assert list(clusters_of(table, ["name"], ["date"])) == []
