"""Backoff *timing* tests for the retry machinery.

The crash-recovery suite proves retries eventually succeed; these tests
pin down *when* they happen.  The runner takes injectable ``clock`` and
``sleep`` callables, so the doubling schedule, the reset-on-success
rule, and the retries-exhausted path are asserted against the exact
sleep sequence — no wall-clock time is spent and no flakiness is
possible.
"""

from __future__ import annotations

import pytest

from repro.errors import TransientSourceError
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import comparison
from repro.pattern.spec import PatternElement, PatternSpec
from repro.recovery import RecoveringStreamRunner, RetryPolicy
from repro.resilience import Diagnostics
from tests.conftest import PREV, PRICE, price_predicate

RISE = price_predicate(comparison(PRICE, ">", PREV), label="rise")

#: A single-element pattern: every rising row is a match, so emission
#: order directly mirrors source order.
PATTERN = compile_pattern(
    PatternSpec([PatternElement("X", RISE, star=False)])
)


class FakeTime:
    """A clock and a sleep that share one timeline and record calls."""

    def __init__(self):
        self.now = 0.0
        self.sleeps: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class FlakySource:
    """An offset-addressable source that fails at planted offsets.

    ``failures[offset]`` is how many times reading that offset fails
    before it succeeds; each failure consumes one entry.
    """

    def __init__(self, rows: int, failures: dict[int, int]):
        self.rows = [
            {"day": day, "price": 100.0 + day} for day in range(rows)
        ]
        self.failures = dict(failures)
        self.opens = 0

    def factory(self, start: int):
        self.opens += 1

        def generate():
            for offset in range(start, len(self.rows)):
                if self.failures.get(offset, 0) > 0:
                    self.failures[offset] -= 1
                    raise TransientSourceError(
                        f"flaky read at offset {offset}"
                    )
                yield offset, self.rows[offset]

        return generate()


def run_stream(source: FlakySource, retry: RetryPolicy, fake: FakeTime):
    diagnostics = Diagnostics()
    runner = RecoveringStreamRunner(
        PATTERN,
        source.factory,
        retry=retry,
        diagnostics=diagnostics,
        clock=fake.clock,
        sleep=fake.sleep,
    )
    emitted = list(runner.run())
    return emitted, diagnostics


class TestBackoffSchedule:
    def test_delay_doubles_per_consecutive_failure(self):
        policy = RetryPolicy(max_retries=5, backoff=0.1)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]

    def test_delay_caps_at_max_backoff(self):
        policy = RetryPolicy(max_retries=20, backoff=1.0, max_backoff=5.0)
        assert policy.delay(10) == 5.0

    def test_custom_factor(self):
        policy = RetryPolicy(max_retries=3, backoff=0.5, backoff_factor=3.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == [
            pytest.approx(0.5),
            pytest.approx(1.5),
            pytest.approx(4.5),
        ]

    def test_runner_sleeps_the_doubling_schedule(self):
        fake = FakeTime()
        source = FlakySource(6, failures={3: 3})  # offset 3 fails 3x
        emitted, diagnostics = run_stream(
            source, RetryPolicy(max_retries=3, backoff=0.1), fake
        )
        assert fake.sleeps == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
        ]
        assert diagnostics.retries == 3
        # The stream still emitted every match despite the stutter.
        assert len(emitted) == 5  # 5 rising pairs in 6 ramp rows

    def test_no_sleep_when_nothing_fails(self):
        fake = FakeTime()
        source = FlakySource(5, failures={})
        emitted, diagnostics = run_stream(
            source, RetryPolicy(max_retries=3, backoff=0.1), fake
        )
        assert fake.sleeps == []
        assert diagnostics.retries == 0
        assert source.opens == 1  # never reopened


class TestJitter:
    """Full-jitter backoff: delays are randomized *within* the geometric
    envelope so simultaneous failures don't retry in lockstep."""

    def test_default_jitter_is_zero_and_schedule_exact(self):
        policy = RetryPolicy(max_retries=3, backoff=0.1)
        assert policy.jitter == 0.0
        # Even with an rng supplied, jitter=0 ignores it entirely.
        assert policy.delay(2, rng=lambda: 0.987) == pytest.approx(0.2)

    def test_full_jitter_spans_zero_to_base(self):
        policy = RetryPolicy(max_retries=3, backoff=0.1, jitter=1.0)
        assert policy.delay(2, rng=lambda: 0.0) == pytest.approx(0.0)
        assert policy.delay(2, rng=lambda: 0.5) == pytest.approx(0.1)
        assert policy.delay(2, rng=lambda: 0.999) == pytest.approx(0.1998)

    def test_partial_jitter_bounds(self):
        # jitter=0.5 keeps at least half the base delay.
        policy = RetryPolicy(max_retries=3, backoff=0.4, jitter=0.5)
        low = policy.delay(1, rng=lambda: 0.0)
        high = policy.delay(1, rng=lambda: 0.999)
        assert low == pytest.approx(0.2)
        assert high < 0.4
        for sample in (0.1, 0.3, 0.7, 0.9):
            delay = policy.delay(1, rng=lambda: sample)
            assert 0.2 <= delay < 0.4

    def test_jitter_respects_max_backoff_cap(self):
        policy = RetryPolicy(
            max_retries=20, backoff=1.0, max_backoff=5.0, jitter=1.0
        )
        assert policy.delay(10, rng=lambda: 0.999) < 5.0

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_runner_threads_its_rng_into_the_delay(self):
        fake = FakeTime()
        source = FlakySource(6, failures={3: 2})
        diagnostics = Diagnostics()
        runner = RecoveringStreamRunner(
            PATTERN,
            source.factory,
            retry=RetryPolicy(max_retries=3, backoff=0.1, jitter=1.0),
            diagnostics=diagnostics,
            clock=fake.clock,
            sleep=fake.sleep,
            rng=lambda: 0.5,
        )
        list(runner.run())
        # Full jitter with rng pinned at 0.5 halves the geometric delays.
        assert fake.sleeps == [pytest.approx(0.05), pytest.approx(0.1)]


class TestResetOnSuccess:
    def test_successful_row_resets_the_failure_count(self):
        fake = FakeTime()
        # Two separated flaky offsets: each burst must restart the
        # schedule at the base backoff, not continue doubling.
        source = FlakySource(8, failures={2: 2, 5: 2})
        emitted, diagnostics = run_stream(
            source, RetryPolicy(max_retries=2, backoff=0.1), fake
        )
        assert fake.sleeps == [
            pytest.approx(0.1),
            pytest.approx(0.2),  # burst at offset 2
            pytest.approx(0.1),
            pytest.approx(0.2),  # burst at offset 5: reset, not 0.4
        ]
        assert len(emitted) == 7

    def test_reset_allows_unbounded_total_retries(self):
        # max_retries bounds CONSECUTIVE failures; 4 separated single
        # failures pass under max_retries=1.
        fake = FakeTime()
        source = FlakySource(10, failures={1: 1, 3: 1, 5: 1, 7: 1})
        emitted, diagnostics = run_stream(
            source, RetryPolicy(max_retries=1, backoff=0.05), fake
        )
        assert diagnostics.retries == 4
        assert fake.sleeps == [pytest.approx(0.05)] * 4
        assert len(emitted) == 9


class TestRetriesExhausted:
    def test_exceeding_max_retries_raises_after_final_sleep(self):
        fake = FakeTime()
        source = FlakySource(6, failures={3: 10})  # more than the budget
        with pytest.raises(TransientSourceError, match="offset 3"):
            run_stream(source, RetryPolicy(max_retries=2, backoff=0.1), fake)
        # Exactly max_retries sleeps happened before giving up.
        assert fake.sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_zero_retries_fails_fast_without_sleeping(self):
        fake = FakeTime()
        source = FlakySource(6, failures={0: 1})
        with pytest.raises(TransientSourceError):
            run_stream(source, RetryPolicy(max_retries=0), fake)
        assert fake.sleeps == []

    def test_non_retryable_errors_propagate_immediately(self):
        fake = FakeTime()

        class Poisoned(FlakySource):
            def factory(self, start):
                def generate():
                    yield 0, self.rows[0]
                    raise KeyError("not a transient failure")

                return generate()

        with pytest.raises(KeyError):
            run_stream(
                Poisoned(3, failures={}),
                RetryPolicy(max_retries=5, backoff=0.1),
                fake,
            )
        assert fake.sleeps == []
