"""Executor edge cases: tiny tables, multi-attribute ordering, ties."""

import datetime as dt

import pytest

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.pattern.predicates import AttributeDomains

DOMAINS = AttributeDomains.prices()


def table_of(rows, name="t", schema=None):
    schema = schema or [("name", "str"), ("date", "date"), ("price", "float")]
    table = Table(name, schema)
    table.insert_many(rows)
    return Catalog([table])


def d(day):
    return dt.date(2000, 1, day)


SIMPLE = "SELECT X.price FROM t SEQUENCE BY date AS (X, Y) WHERE Y.price > X.price"


class TestTinyInputs:
    def test_empty_table(self):
        catalog = table_of([])
        assert len(Executor(catalog, domains=DOMAINS).execute(SIMPLE)) == 0

    def test_single_row(self):
        catalog = table_of([{"name": "A", "date": d(1), "price": 1.0}])
        assert len(Executor(catalog, domains=DOMAINS).execute(SIMPLE)) == 0

    def test_pattern_longer_than_cluster(self):
        catalog = table_of(
            [
                {"name": "A", "date": d(1), "price": 1.0},
                {"name": "A", "date": d(2), "price": 2.0},
            ]
        )
        query = (
            "SELECT X.price FROM t SEQUENCE BY date AS (X, Y, Z, W) "
            "WHERE Y.price > X.price AND Z.price > Y.price AND W.price > Z.price"
        )
        assert len(Executor(catalog, domains=DOMAINS).execute(query)) == 0

    def test_exactly_pattern_sized_cluster(self):
        catalog = table_of(
            [
                {"name": "A", "date": d(1), "price": 1.0},
                {"name": "A", "date": d(2), "price": 2.0},
            ]
        )
        (row,) = Executor(catalog, domains=DOMAINS).execute(SIMPLE)
        assert row == (1.0,)


class TestOrdering:
    def test_multi_attribute_sequence_by(self):
        """SEQUENCE BY date, seq: ties on date break on the second key."""
        schema = [("date", "date"), ("seq", "int"), ("price", "float")]
        rows = [
            {"date": d(1), "seq": 2, "price": 3.0},
            {"date": d(1), "seq": 1, "price": 1.0},
            {"date": d(2), "seq": 1, "price": 2.0},
        ]
        catalog = table_of(rows, schema=schema)
        query = (
            "SELECT X.price, Y.price, Z.price FROM t SEQUENCE BY date, seq "
            "AS (X, Y, Z) WHERE X.price > 0 AND Y.price > 0 AND Z.price > 0"
        )
        (row,) = Executor(catalog, domains=DOMAINS).execute(query)
        assert row == (1.0, 3.0, 2.0)  # ordered (1,1), (1,2), (2,1)

    def test_cluster_by_multiple_attributes(self):
        schema = [("a", "str"), ("b", "str"), ("date", "date"), ("price", "float")]
        rows = [
            {"a": "x", "b": "p", "date": d(1), "price": 1.0},
            {"a": "x", "b": "p", "date": d(2), "price": 2.0},
            {"a": "x", "b": "q", "date": d(1), "price": 1.0},
            {"a": "x", "b": "q", "date": d(2), "price": 0.5},
        ]
        catalog = table_of(rows, schema=schema)
        query = (
            "SELECT X.b FROM t CLUSTER BY a, b SEQUENCE BY date AS (X, Y) "
            "WHERE Y.price > X.price"
        )
        result = Executor(catalog, domains=DOMAINS).execute(query)
        assert result.rows == (("p",),)  # only the (x, p) cluster rises


class TestProjectionEdges:
    def test_arithmetic_in_select(self):
        catalog = table_of(
            [
                {"name": "A", "date": d(1), "price": 10.0},
                {"name": "A", "date": d(2), "price": 15.0},
            ]
        )
        query = (
            "SELECT Y.price - X.price AS gain, Y.price / X.price AS ratio "
            "FROM t SEQUENCE BY date AS (X, Y) WHERE Y.price > X.price"
        )
        (row,) = Executor(catalog, domains=DOMAINS).execute(query)
        assert row == (5.0, 1.5)

    def test_duplicate_select_expressions_allowed(self):
        catalog = table_of(
            [
                {"name": "A", "date": d(1), "price": 10.0},
                {"name": "A", "date": d(2), "price": 15.0},
            ]
        )
        query = (
            "SELECT X.price, X.price FROM t SEQUENCE BY date AS (X, Y) "
            "WHERE Y.price > X.price"
        )
        result = Executor(catalog, domains=DOMAINS).execute(query)
        assert result.rows == ((10.0, 10.0),)

    def test_string_column_in_select_and_where(self):
        catalog = table_of(
            [
                {"name": "UP", "date": d(1), "price": 10.0},
                {"name": "UP", "date": d(2), "price": 15.0},
                {"name": "DN", "date": d(1), "price": 10.0},
                {"name": "DN", "date": d(2), "price": 5.0},
            ]
        )
        query = (
            "SELECT Y.name FROM t CLUSTER BY name SEQUENCE BY date AS (X, Y) "
            "WHERE Y.price > X.price AND Y.name != 'DN'"
        )
        result = Executor(catalog, domains=DOMAINS).execute(query)
        assert result.rows == (("UP",),)
