"""Tables and schemas: typing, validation, errors."""

import datetime as dt

import pytest

from repro.engine.table import Column, Schema, Table
from repro.errors import SchemaError


class TestColumn:
    def test_valid_types(self):
        for type_name in ("str", "int", "float", "date"):
            Column("c", type_name)

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("c", "varchar")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", "int")

    def test_validate_values(self):
        Column("c", "int").validate(5)
        Column("c", "float").validate(5)  # int widens to float
        Column("c", "float").validate(5.5)
        Column("c", "str").validate("x")
        Column("c", "date").validate(dt.date(2000, 1, 1))

    @pytest.mark.parametrize(
        "type_name, bad",
        [("int", 5.5), ("int", "5"), ("float", "5"), ("str", 5), ("date", "2000-01-01"), ("int", True)],
    )
    def test_validate_rejects(self, type_name, bad):
        with pytest.raises(SchemaError):
            Column("c", type_name).validate(bad)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int"), ("a", "str")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_tuple_shorthand(self):
        schema = Schema([("a", "int"), ("b", "str")])
        assert schema.names == ("a", "b")
        assert schema.column("a").type == "int"

    def test_contains(self):
        schema = Schema([("a", "int")])
        assert "a" in schema and "b" not in schema

    def test_unknown_column_lookup(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int")]).column("b")

    def test_validate_row(self):
        schema = Schema([("a", "int"), ("b", "str")])
        row = schema.validate_row({"a": 1, "b": "x"})
        assert row == {"a": 1, "b": "x"}

    def test_validate_row_missing_column(self):
        schema = Schema([("a", "int"), ("b", "str")])
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1})

    def test_validate_row_extra_column(self):
        schema = Schema([("a", "int")])
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "z": 2})


class TestTable:
    def _table(self):
        return Table("t", [("name", "str"), ("price", "float")])

    def test_insert_and_iterate(self):
        table = self._table()
        table.insert({"name": "IBM", "price": 80.0})
        table.insert_many([{"name": "IBM", "price": 81.0}])
        assert len(table) == 2
        assert [row["price"] for row in table] == [80.0, 81.0]

    def test_insert_validates(self):
        table = self._table()
        with pytest.raises(SchemaError):
            table.insert({"name": "IBM", "price": "eighty"})
        assert len(table) == 0

    def test_repr(self):
        assert "t" in repr(self._table())
