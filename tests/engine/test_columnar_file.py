"""Crash consistency of the out-of-core columnar file format.

The ``.rcol`` writer is atomic (tmp + fsync + rename) and the mmap
loader validates magic, version, blob extents, CRCs, and string-offset
monotonicity — so any torn, partial, or lost write must surface as
:class:`~repro.errors.ColumnarFormatError` on load, never as silently
wrong rows.  Failpoints (``columnar.write`` / ``columnar.fsync`` /
``columnar.rename``) drive each fault class deterministically, and
:func:`~repro.engine.columnar.load_table` must fall back to CSV ingest
with a diagnostic when a *sidecar* is damaged.  These fault classes run
in the CI fault matrix alongside the checkpoint ones.
"""

from __future__ import annotations

import datetime as dt
import os

import pytest

from repro import failpoints
from repro.engine.columnar import (
    ColumnarTable,
    load_columnar,
    load_table,
    sidecar_path,
    write_columnar,
)
from repro.engine.csv_io import save_csv
from repro.engine.table import Schema, Table
from repro.errors import ColumnarFormatError, FailpointError
from repro.resilience import Diagnostics

SCHEMA = [("name", "str"), ("date", "date"), ("price", "float"), ("volume", "int")]


def sample_table(rows=12) -> Table:
    table = Table("quote", SCHEMA)
    base = dt.date(2001, 3, 5)
    for index in range(rows):
        table.insert(
            {
                "name": "AAA" if index % 2 else "BBB",
                "date": base + dt.timedelta(days=index),
                "price": 50.0 + index * 0.5,
                "volume": 1000 + index,
            }
        )
    return table


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


def test_round_trip_preserves_rows_and_schema(tmp_path):
    table = sample_table()
    path = str(tmp_path / "quote.rcol")
    write_columnar(table, path)
    loaded = load_columnar(path)
    try:
        assert isinstance(loaded, ColumnarTable)
        assert loaded.name == table.name
        assert loaded.schema.columns == table.schema.columns
        assert len(loaded) == len(table.rows)
        assert [dict(row) for row in loaded] == table.rows
    finally:
        loaded.close()


def test_empty_table_round_trips(tmp_path):
    table = Table("quote", SCHEMA)
    path = str(tmp_path / "empty.rcol")
    write_columnar(table, path)
    loaded = load_columnar(path)
    try:
        assert len(loaded) == 0 and list(loaded) == []
    finally:
        loaded.close()


# ----------------------------------------------------------------------
# Fault classes (mirrored in the CI fault matrix)
# ----------------------------------------------------------------------


def test_torn_write_rejected_on_load(tmp_path):
    """A write torn mid-payload must fail validation, not load."""
    path = str(tmp_path / "quote.rcol")
    with failpoints.scoped("columnar.write=torn:40"):
        write_columnar(sample_table(), path)
    assert os.path.exists(path)  # the rename completed; content is torn
    with pytest.raises(ColumnarFormatError):
        load_columnar(path)


def test_partial_mmap_truncated_file_rejected(tmp_path):
    """A file truncated after the fact (partial mmap) fails extents."""
    path = str(tmp_path / "quote.rcol")
    write_columnar(sample_table(), path)
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
    with pytest.raises(ColumnarFormatError):
        load_columnar(path)


def test_rename_crash_leaves_no_file(tmp_path):
    """A crash between tmp write and rename leaves nothing behind —
    neither the final file nor the tmp."""
    path = str(tmp_path / "quote.rcol")
    with failpoints.scoped("columnar.rename=raise"):
        with pytest.raises(FailpointError):
            write_columnar(sample_table(), path)
    assert not os.path.exists(path)
    assert os.listdir(tmp_path) == []


def test_fsync_loss_is_tolerated_when_content_survives(tmp_path):
    """A skipped fsync alone (no crash) still produces a valid file —
    durability is at risk, consistency is not."""
    path = str(tmp_path / "quote.rcol")
    with failpoints.scoped("columnar.fsync=skip"):
        write_columnar(sample_table(), path)
    loaded = load_columnar(path)
    try:
        assert len(loaded) == 12
    finally:
        loaded.close()


def test_bad_magic_rejected(tmp_path):
    path = str(tmp_path / "quote.rcol")
    write_columnar(sample_table(), path)
    with open(path, "r+b") as handle:
        handle.write(b"NOTMAGIC")
    with pytest.raises(ColumnarFormatError):
        load_columnar(path)


def test_crc_bit_flip_rejected(tmp_path):
    path = str(tmp_path / "quote.rcol")
    write_columnar(sample_table(), path)
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.seek(size - 3)
        byte = handle.read(1)
        handle.seek(size - 3)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(ColumnarFormatError):
        load_columnar(path)


def test_garbage_file_rejected(tmp_path):
    path = str(tmp_path / "quote.rcol")
    with open(path, "wb") as handle:
        handle.write(b"\x00" * 7)
    with pytest.raises(ColumnarFormatError):
        load_columnar(path)


# ----------------------------------------------------------------------
# load_table: strict .rcol vs sidecar-with-fallback
# ----------------------------------------------------------------------


def test_load_table_serves_rcol_directly(tmp_path):
    table = sample_table()
    path = str(tmp_path / "quote.rcol")
    write_columnar(table, path)
    loaded = load_table(path, "quote", Schema(SCHEMA))
    try:
        assert [dict(row) for row in loaded] == table.rows
    finally:
        loaded.close()


def test_load_table_rcol_schema_mismatch_raises(tmp_path):
    path = str(tmp_path / "quote.rcol")
    write_columnar(sample_table(), path)
    with pytest.raises(ColumnarFormatError):
        load_table(path, "quote", Schema([("name", "str"), ("price", "float")]))


def test_damaged_sidecar_falls_back_to_csv(tmp_path):
    """A CSV with a torn .rcol sidecar loads from the CSV, with a
    diagnostic — never an error, never wrong rows."""
    table = sample_table()
    csv_path = str(tmp_path / "quote.csv")
    save_csv(table, csv_path)
    with failpoints.scoped("columnar.write=torn:40"):
        write_columnar(table, sidecar_path(csv_path))
    diagnostics = Diagnostics()
    loaded = load_table(
        csv_path, "quote", Schema(SCHEMA), diagnostics=diagnostics
    )
    assert isinstance(loaded, Table)  # CSV ingest, not the mmap path
    assert loaded.rows == table.rows
    assert any("sidecar" in warning for warning in diagnostics.warnings)


def test_intact_sidecar_is_preferred(tmp_path):
    table = sample_table()
    csv_path = str(tmp_path / "quote.csv")
    save_csv(table, csv_path)
    write_columnar(table, sidecar_path(csv_path))
    diagnostics = Diagnostics()
    loaded = load_table(
        csv_path, "quote", Schema(SCHEMA), diagnostics=diagnostics
    )
    try:
        assert isinstance(loaded, ColumnarTable)
        assert [dict(row) for row in loaded] == table.rows
        assert not diagnostics.warnings
    finally:
        loaded.close()


def test_conversion_cli_round_trips(tmp_path, capsys):
    from repro.engine.columnar import _main

    table = sample_table()
    csv_path = str(tmp_path / "quote.csv")
    out_path = str(tmp_path / "quote.rcol")
    save_csv(table, csv_path)
    schema_spec = ",".join(f"{name}:{kind}" for name, kind in SCHEMA)
    exit_code = _main(
        [csv_path, out_path, "--name", "quote", "--schema", schema_spec]
    )
    assert exit_code == 0
    loaded = load_columnar(out_path)
    try:
        assert [dict(row) for row in loaded] == table.rows
    finally:
        loaded.close()
