"""A global deadline expiring mid-pool must stop workers cleanly.

The contract (ISSUE 5 satellite): a ``wall_clock_deadline`` that fires
while work units are still in flight stops outstanding workers, the
call still returns a well-formed partial :class:`Result` and
:class:`ExecutionReport` with the limit recorded, and the CLI surfaces
it as exit code 3 — never a hang, never a traceback.
"""

from __future__ import annotations

import io
import random
import time

from repro.cli import EXIT_LIMIT_HIT, main
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Schema, Table
from repro.pattern.predicates import AttributeDomains
from repro.resilience import ResourceLimits

QUERY = (
    "SELECT X.name, X.date, Z.date FROM quote CLUSTER BY name "
    "SEQUENCE BY date AS (X, *Y, Z) "
    "WHERE Y.price < Y.previous.price AND Z.price > 1.01 * X.price"
)


def heavy_catalog(partitions=8, rows=4000, seed=21):
    rng = random.Random(seed)
    table = Table(
        "quote", Schema([("name", "str"), ("date", "int"), ("price", "float")])
    )
    for p in range(partitions):
        price = 100.0
        for day in range(rows):
            price = max(1.0, price + rng.uniform(-2.0, 2.0))
            table.insert(
                {"name": f"S{p:02d}", "date": day, "price": round(price, 2)}
            )
    return Catalog([table])


class TestDeadlineMidPool:
    def test_partial_result_and_wellformed_report(self):
        catalog = heavy_catalog()
        executor = Executor(
            catalog,
            domains=AttributeDomains.prices(),
            matcher="naive",
            workers=2,
            parallel_mode="thread",
            # An order of magnitude below the workload's full runtime,
            # so the deadline reliably fires while units are in flight.
            limits=ResourceLimits(wall_clock_deadline=0.01),
        )
        started = time.monotonic()
        result, report = executor.execute_with_report(QUERY)
        elapsed = time.monotonic() - started
        # Workers hold the same deadline allowance, so expiry stops the
        # pool promptly instead of letting stragglers run to completion.
        assert elapsed < 10.0
        assert result.diagnostics.limit_hit
        assert any(
            "wall_clock_deadline" in reason
            for reason in result.diagnostics.limits_hit
        )
        # The partial report stays internally consistent.
        assert report.matches == len(result.rows)
        assert report.clusters_searched <= report.clusters
        assert report.diagnostics is result.diagnostics
        assert len(result.columns) == 3

    def test_generous_deadline_changes_nothing(self):
        catalog = heavy_catalog(partitions=4, rows=200)
        serial = Executor(
            catalog, domains=AttributeDomains.prices(), matcher="naive"
        ).execute(QUERY)
        bounded = Executor(
            catalog,
            domains=AttributeDomains.prices(),
            matcher="naive",
            workers=2,
            parallel_mode="thread",
            limits=ResourceLimits(wall_clock_deadline=300.0),
        ).execute(QUERY)
        assert bounded.rows == serial.rows
        assert not bounded.diagnostics.limit_hit

    def test_already_expired_deadline_is_clean(self):
        catalog = heavy_catalog(partitions=3, rows=50)
        executor = Executor(
            catalog,
            domains=AttributeDomains.prices(),
            workers=4,
            parallel_mode="thread",
            limits=ResourceLimits(wall_clock_deadline=0.0),
        )
        result, report = executor.execute_with_report(QUERY)
        assert result.rows == ()
        assert result.diagnostics.limit_hit
        assert report.matches == 0


class TestCliExitCode:
    def test_workers_with_tiny_timeout_exits_3(self, tmp_path):
        rng = random.Random(5)
        path = tmp_path / "quotes.csv"
        lines = ["name,date,price"]
        for p in range(6):
            price = 100.0
            for day in range(400):
                price = max(1.0, price + rng.uniform(-2.0, 2.0))
                lines.append(f"S{p:02d},{day},{price:.2f}")
        path.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        code = main(
            [
                "query",
                "--table",
                f"quote={path}:name:str,date:int,price:float",
                "--positive",
                "price",
                "--matcher",
                "naive",
                "--workers",
                "2",
                "--timeout",
                "0.00001",
                QUERY,
            ],
            out=out,
        )
        assert code == EXIT_LIMIT_HIT
        assert "rows)" in out.getvalue()  # partial result still printed
