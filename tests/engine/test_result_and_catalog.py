"""Result relations, catalog, and CSV round-trips."""

import datetime as dt

import pytest

from repro.engine.catalog import Catalog
from repro.engine.csv_io import load_csv, save_csv
from repro.engine.result import Result
from repro.engine.table import Schema, Table
from repro.errors import ExecutionError, SchemaError


class TestResult:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            Result(["a", "b"], [(1,)])

    def test_to_dicts(self):
        result = Result(["a", "b"], [(1, "x"), (2, "y")])
        assert result.to_dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_column_accessor(self):
        result = Result(["a", "b"], [(1, "x"), (2, "y")])
        assert result.column("b") == ["x", "y"]
        with pytest.raises(KeyError):
            result.column("z")

    def test_equality(self):
        assert Result(["a"], [(1,)]) == Result(["a"], [(1,)])
        assert Result(["a"], [(1,)]) != Result(["a"], [(2,)])

    def test_pretty_truncation(self):
        result = Result(["n"], [(i,) for i in range(30)])
        text = result.pretty(max_rows=5)
        assert "10 more rows" not in text  # 25 hidden
        assert "25 more rows" in text
        assert result.pretty(max_rows=None).count("\n") >= 30

    def test_pretty_formats_null_and_floats(self):
        text = Result(["v"], [(None,), (1.5,)]).pretty()
        assert "NULL" in text and "1.50" in text


class TestCatalog:
    def test_register_and_lookup(self):
        table = Table("t", [("a", "int")])
        catalog = Catalog([table])
        assert catalog.table("t") is table
        assert "t" in catalog and len(catalog) == 1

    def test_duplicate_rejected(self):
        table = Table("t", [("a", "int")])
        catalog = Catalog([table])
        with pytest.raises(ExecutionError):
            catalog.register(Table("t", [("a", "int")]))

    def test_drop(self):
        catalog = Catalog([Table("t", [("a", "int")])])
        catalog.drop("t")
        assert "t" not in catalog
        with pytest.raises(ExecutionError):
            catalog.drop("t")

    def test_missing_lookup(self):
        with pytest.raises(ExecutionError):
            Catalog([]).table("nope")


class TestCsvRoundTrip:
    SCHEMA = Schema(
        [("name", "str"), ("date", "date"), ("price", "float"), ("lot", "int")]
    )

    def _table(self):
        table = Table("quote", self.SCHEMA)
        table.insert_many(
            [
                {"name": "IBM", "date": dt.date(1999, 1, 25), "price": 81.0, "lot": 100},
                {"name": "O'Neil", "date": dt.date(1999, 1, 26), "price": 80.5, "lot": 200},
            ]
        )
        return table

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "quotes.csv"
        original = self._table()
        save_csv(original, path)
        loaded = load_csv(path, "quote", self.SCHEMA)
        assert loaded.rows == original.rows

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,price\nIBM,81\n")
        with pytest.raises(SchemaError):
            load_csv(path, "quote", self.SCHEMA)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path, "quote", self.SCHEMA)

    def test_type_conversion(self, tmp_path):
        path = tmp_path / "typed.csv"
        path.write_text("name,date,price,lot\nIBM,1999-01-25,81.5,100\n")
        table = load_csv(path, "quote", self.SCHEMA)
        (row,) = table.rows
        assert row["date"] == dt.date(1999, 1, 25)
        assert row["price"] == 81.5
        assert row["lot"] == 100


class TestResultCsv:
    def test_to_csv_roundtrip_text(self, tmp_path):
        import datetime as dt

        path = tmp_path / "result.csv"
        result = Result(
            ["name", "when", "price"],
            [("IBM", dt.date(1999, 1, 25), 81.5), ("GE", None, 10.0)],
        )
        result.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "name,when,price"
        assert lines[1] == "IBM,1999-01-25,81.5"
        assert lines[2] == "GE,,10.0"
