"""Differential suite: parallel execution must be bit-identical to serial.

Every test runs the same query twice — once on the serial path, once
through :mod:`repro.engine.parallel` — and asserts the strongest
equality the contract promises: identical rows in identical order,
identical report accounting (clusters, rows scanned, predicate tests,
matches, matcher name), and identical diagnostics, across all registry
matchers × both evaluators × error policies, in both thread and process
pool modes.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Schema, Table
from repro.match.base import Instrumentation
from repro.pattern.predicates import AttributeDomains
from repro.resilience import ResourceLimits

MATCHER_NAMES = ["ops", "ops-nonstar", "naive", "backtracking"]

STAR_QUERY = (
    "SELECT X.name, X.date, Z.date FROM quote CLUSTER BY name "
    "SEQUENCE BY date AS (X, *Y, Z) "
    "WHERE Y.price < Y.previous.price AND Z.price > 1.03 * X.price"
)
FLAT_QUERY = (
    "SELECT X.name, Y.date FROM quote CLUSTER BY name SEQUENCE BY date "
    "AS (X, Y, Z) WHERE Y.price > 1.02 * X.price "
    "AND Z.price < 0.99 * Y.price"
)
QUERIES = [STAR_QUERY, FLAT_QUERY]


def make_catalog(seed: int, partitions: int = 8, rows: int = 80) -> Catalog:
    """A multi-partition random-walk quote table."""
    rng = random.Random(seed)
    table = Table(
        "quote", Schema([("name", "str"), ("date", "int"), ("price", "float")])
    )
    for p in range(partitions):
        price = 100.0
        for day in range(rows):
            price = max(1.0, price + rng.uniform(-4.0, 4.0))
            table.insert(
                {"name": f"S{p:02d}", "date": day, "price": round(price, 2)}
            )
    return Catalog([table])


def run(catalog, query, *, workers=1, mode="auto", trace=False, **kw):
    executor = Executor(
        catalog,
        domains=AttributeDomains.prices(),
        workers=workers,
        parallel_mode=mode,
        **kw,
    )
    instrumentation = Instrumentation(record_trace=trace)
    result, report = executor.execute_with_report(query, instrumentation)
    return result, report, instrumentation


REPORT_FIELDS = (
    "matcher",
    "clusters",
    "clusters_searched",
    "rows_scanned",
    "predicate_tests",
    "matches",
)


def assert_equivalent(catalog, query, *, workers, mode, trace=False, **kw):
    r0, rep0, inst0 = run(catalog, query, trace=trace, **kw)
    r1, rep1, inst1 = run(
        catalog, query, workers=workers, mode=mode, trace=trace, **kw
    )
    assert r0.columns == r1.columns
    assert r0.rows == r1.rows
    for field in REPORT_FIELDS:
        assert getattr(rep0, field) == getattr(rep1, field), field
    assert r0.diagnostics.to_dict() == r1.diagnostics.to_dict()
    assert inst0.tests == inst1.tests
    if trace:
        assert inst0.trace == inst1.trace
    return r0, rep0


class TestDifferential:
    @pytest.mark.parametrize("matcher", MATCHER_NAMES)
    @pytest.mark.parametrize("codegen", [True, False])
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("query", QUERIES)
    def test_all_matchers_and_evaluators(self, matcher, codegen, workers, query):
        catalog = make_catalog(seed=3)
        kw = {"matcher": matcher, "codegen": codegen}
        if matcher == "ops-nonstar" and query is STAR_QUERY:
            # The non-star matcher needs the lenient downgrade to run
            # star patterns; equivalence must hold through the fallback.
            kw["policy"] = "skip"
        assert_equivalent(catalog, query, workers=workers, mode="thread", **kw)

    @pytest.mark.parametrize("matcher", ["ops", "naive"])
    def test_process_pool_mode(self, matcher):
        catalog = make_catalog(seed=5)
        r, rep = assert_equivalent(
            catalog, STAR_QUERY, workers=2, mode="process", matcher=matcher
        )
        assert rep.clusters_searched == 8

    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_randomized_data(self, seed):
        rng = random.Random(1000 + seed)
        catalog = make_catalog(
            seed=seed,
            partitions=rng.randint(1, 12),
            rows=rng.randint(5, 120),
        )
        query = rng.choice(QUERIES)
        workers = rng.choice([2, 4])
        assert_equivalent(catalog, query, workers=workers, mode="thread")

    def test_trace_merge_preserves_order(self):
        catalog = make_catalog(seed=3, partitions=5, rows=40)
        assert_equivalent(
            catalog, FLAT_QUERY, workers=3, mode="thread", trace=True
        )

    def test_workers_one_is_the_serial_path(self):
        catalog = make_catalog(seed=3)
        r0, rep0, _ = run(catalog, STAR_QUERY)
        r1, rep1, _ = run(catalog, STAR_QUERY, workers=1, mode="thread")
        assert r0.rows == r1.rows
        assert rep0.predicate_tests == rep1.predicate_tests

    def test_per_call_workers_override(self):
        catalog = make_catalog(seed=3)
        executor = Executor(catalog, domains=AttributeDomains.prices())
        serial = executor.execute(STAR_QUERY)
        parallel = executor.execute(STAR_QUERY, workers=3)
        assert serial.rows == parallel.rows

    def test_single_partition_runs_inline(self):
        catalog = make_catalog(seed=3, partitions=1)
        assert_equivalent(catalog, STAR_QUERY, workers=4, mode="thread")

    def test_empty_table(self):
        catalog = make_catalog(seed=3, partitions=0)
        r, rep = assert_equivalent(
            catalog, STAR_QUERY, workers=2, mode="thread"
        )
        assert r.rows == () and rep.clusters == 0


class TestErrorPolicies:
    def corrupt(self, catalog, name="S03", date=10):
        # Mutate after insert: schema validation passes, matchers then
        # hit the bad value mid-search in whichever path runs them.
        for row in catalog.table("quote"):
            if row["name"] == name and row["date"] == date:
                row["price"] = "bogus"

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_raise_policy_same_error(self, mode):
        catalog = make_catalog(seed=7)
        self.corrupt(catalog)
        errors = []
        for workers in (1, 3):
            with pytest.raises(TypeError) as excinfo:
                run(
                    catalog,
                    STAR_QUERY,
                    workers=workers,
                    mode=mode,
                    matcher="naive",
                )
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]

    def test_earliest_partition_error_wins(self):
        # Corrupt two partitions; the parallel path must surface the
        # error of the earliest one, exactly as the serial scan would.
        catalog = make_catalog(seed=7)
        self.corrupt(catalog, name="S06")
        self.corrupt(catalog, name="S01")
        with pytest.raises(TypeError) as serial_err:
            run(catalog, STAR_QUERY, matcher="naive")
        with pytest.raises(TypeError) as parallel_err:
            run(catalog, STAR_QUERY, workers=4, mode="thread", matcher="naive")
        assert str(serial_err.value) == str(parallel_err.value)

    @pytest.mark.parametrize("policy", ["skip", "collect"])
    def test_lenient_policies_with_partition_faults(self, policy):
        # Duplicate SEQUENCE BY keys in two partitions: the lenient
        # sequence audit quarantines/warns identically in both paths.
        catalog = make_catalog(seed=9, partitions=6, rows=30)
        table = catalog.table("quote")
        for name in ("S01", "S04"):
            table.insert({"name": name, "date": 5, "price": 55.0})
        assert_equivalent(
            catalog, FLAT_QUERY, workers=3, mode="thread", policy=policy
        )

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_degraded_fallback_equivalence(self, mode):
        # ops-nonstar cannot run a star pattern; under a lenient policy
        # both paths downgrade to naive and record one identical
        # downgrade diagnostic.
        catalog = make_catalog(seed=11, partitions=5, rows=40)
        r, rep = assert_equivalent(
            catalog,
            STAR_QUERY,
            workers=3,
            mode=mode,
            matcher="ops-nonstar",
            policy="skip",
        )
        assert rep.matcher == "naive"
        assert len(r.diagnostics.downgrades) == 1

    def test_strict_policy_unplannable_raises_both(self):
        catalog = make_catalog(seed=11, partitions=3, rows=20)
        from repro.errors import PlanningError

        for workers in (1, 3):
            with pytest.raises(PlanningError):
                run(
                    catalog,
                    STAR_QUERY,
                    workers=workers,
                    mode="thread",
                    matcher="ops-nonstar",
                )


class TestLimits:
    def test_max_matches_identical_kept_rows(self):
        catalog = make_catalog(seed=13)
        limits = ResourceLimits(max_matches=5)
        r0, rep0, _ = run(catalog, STAR_QUERY, limits=limits)
        r1, rep1, _ = run(
            catalog, STAR_QUERY, workers=4, mode="thread", limits=limits
        )
        assert r0.rows == r1.rows
        assert rep0.matches == rep1.matches == 5
        assert r0.diagnostics.limits_hit == r1.diagnostics.limits_hit

    def test_max_matches_zero(self):
        catalog = make_catalog(seed=13)
        limits = ResourceLimits(max_matches=0)
        r0, rep0, _ = run(catalog, STAR_QUERY, limits=limits)
        r1, rep1, _ = run(
            catalog, STAR_QUERY, workers=2, mode="thread", limits=limits
        )
        assert r0.rows == r1.rows == ()
        assert rep0.clusters == rep1.clusters

    def test_max_rows_scanned_admits_serial_prefix(self):
        # Admission runs in the parent with serial check-then-charge
        # semantics, so the scanned-row accounting is byte-identical —
        # the budget can never over-admit because work was split.
        catalog = make_catalog(seed=13)
        limits = ResourceLimits(max_rows_scanned=300)
        r0, rep0, _ = run(catalog, STAR_QUERY, limits=limits)
        r1, rep1, _ = run(
            catalog, STAR_QUERY, workers=4, mode="thread", limits=limits
        )
        assert r0.rows == r1.rows
        assert rep0.rows_scanned == rep1.rows_scanned <= 300
        assert rep0.clusters_searched == rep1.clusters_searched
        assert rep0.predicate_tests == rep1.predicate_tests
        assert r0.diagnostics.limits_hit == r1.diagnostics.limits_hit

    def test_limits_unhit_stay_fully_identical(self):
        catalog = make_catalog(seed=13, partitions=4, rows=30)
        limits = ResourceLimits(max_matches=10_000, max_rows_scanned=10**9)
        assert_equivalent(
            catalog, FLAT_QUERY, workers=2, mode="thread", limits=limits
        )


class TestPlanCacheInterplay:
    def test_parallel_hits_the_same_plan_cache(self):
        catalog = make_catalog(seed=3)
        executor = Executor(catalog, domains=AttributeDomains.prices())
        serial = executor.execute(STAR_QUERY)
        hits, misses = executor.plan_cache_hits, executor.plan_cache_misses
        result = executor.execute(STAR_QUERY, workers=3)
        assert executor.plan_cache_hits == hits + 1
        assert executor.plan_cache_misses == misses
        assert result.rows == serial.rows and len(serial.rows) > 0

    def test_interleaved_serial_and_parallel_calls(self):
        catalog = make_catalog(seed=3, partitions=6, rows=40)
        executor = Executor(catalog, domains=AttributeDomains.prices())
        serial = executor.execute(STAR_QUERY)
        for _ in range(3):
            assert executor.execute(STAR_QUERY, workers=2).rows == serial.rows
            assert executor.execute(STAR_QUERY).rows == serial.rows
