"""The statement session: DDL + DML + queries end to end."""

import datetime as dt

import pytest

from repro.engine.session import Session, split_statements
from repro.errors import ExecutionError, SchemaError, SqlTsSyntaxError
from repro.pattern.predicates import AttributeDomains
from repro.sqlts.ddl import (
    CreateTable,
    coerce_value,
    parse_create_table,
    parse_insert,
    statement_kind,
)

DOMAINS = AttributeDomains.prices()

#: The paper's own DDL, verbatim (Section 2) — price widened to Real so
#: the example data below can carry cents.
PAPER_DDL = "CREATE TABLE quote ( name Varchar(8), date Date, price Real )"


class TestDdlParsing:
    def test_paper_create_table(self):
        parsed = parse_create_table(PAPER_DDL)
        assert parsed == CreateTable(
            "quote", (("name", "str"), ("date", "date"), ("price", "float"))
        )

    def test_integer_types(self):
        parsed = parse_create_table("CREATE TABLE t (a Integer, b BigInt)")
        assert parsed.columns == (("a", "int"), ("b", "int"))

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlTsSyntaxError):
            parse_create_table("CREATE TABLE t (a Blob)")

    def test_missing_paren_rejected(self):
        with pytest.raises(SqlTsSyntaxError):
            parse_create_table("CREATE TABLE t (a Integer")

    def test_case_insensitive_keywords(self):
        parsed = parse_create_table("create table T (x real)")
        assert parsed.name == "T"


class TestInsertParsing:
    def test_positional_values(self):
        parsed = parse_insert("INSERT INTO quote VALUES ('IBM', '1999-01-25', 81.5)")
        assert parsed.table == "quote"
        assert parsed.columns is None
        assert parsed.rows == (("IBM", "1999-01-25", 81.5),)

    def test_named_columns_and_multirow(self):
        parsed = parse_insert(
            "INSERT INTO t (a, b) VALUES (1, 2), (3, -4)"
        )
        assert parsed.columns == ("a", "b")
        assert parsed.rows == ((1, 2), (3, -4))

    def test_integer_vs_float_literals(self):
        parsed = parse_insert("INSERT INTO t VALUES (1, 1.5, 1e2)")
        assert parsed.rows == ((1, 1.5, 100.0),)

    def test_garbage_rejected(self):
        with pytest.raises(SqlTsSyntaxError):
            parse_insert("INSERT INTO t VALUES (a)")


class TestStatementKind:
    @pytest.mark.parametrize(
        "text, kind",
        [
            (PAPER_DDL, "create"),
            ("INSERT INTO t VALUES (1)", "insert"),
            ("SELECT X.a FROM t AS (X) WHERE X.a > 1", "query"),
            ("  select X.a from t as (X) where X.a > 1", "query"),
        ],
    )
    def test_kinds(self, text, kind):
        assert statement_kind(text) == kind

    def test_empty_statement(self):
        with pytest.raises(SqlTsSyntaxError):
            statement_kind("   ")


class TestCoercion:
    def test_iso_string_to_date(self):
        assert coerce_value("1999-01-25", "date") == dt.date(1999, 1, 25)

    def test_int_widens_to_float(self):
        assert coerce_value(81, "float") == 81.0

    def test_whole_float_narrows_to_int(self):
        assert coerce_value(81.0, "int") == 81

    def test_passthrough(self):
        assert coerce_value("IBM", "str") == "IBM"


class TestSession:
    def test_paper_workflow(self):
        session = Session(domains=DOMAINS)
        session.execute(PAPER_DDL)
        session.execute(
            "INSERT INTO quote VALUES "
            "('IBM', '1999-01-25', 100.0), "
            "('IBM', '1999-01-26', 120.0), "
            "('IBM', '1999-01-27', 90.0)"
        )
        result = session.execute(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date "
            "AS (X, Y, Z) WHERE Y.price > 1.15 * X.price "
            "AND Z.price < 0.80 * Y.price"
        )
        assert result is not None
        assert result.rows == (("IBM",),)

    def test_ddl_returns_none(self):
        session = Session()
        assert session.execute(PAPER_DDL) is None

    def test_insert_into_missing_table(self):
        session = Session()
        with pytest.raises(ExecutionError):
            session.execute("INSERT INTO nosuch VALUES (1)")

    def test_insert_validates_types(self):
        session = Session()
        session.execute("CREATE TABLE t (a Integer)")
        with pytest.raises(SchemaError):
            session.execute("INSERT INTO t VALUES ('not a number')")

    def test_insert_arity_mismatch(self):
        session = Session()
        session.execute("CREATE TABLE t (a Integer, b Integer)")
        with pytest.raises(ExecutionError):
            session.execute("INSERT INTO t VALUES (1)")

    def test_named_column_insert(self):
        session = Session()
        session.execute("CREATE TABLE t (a Integer, b Varchar(4))")
        session.execute("INSERT INTO t (b, a) VALUES ('x', 7)")
        assert session.catalog.table("t").rows == [{"a": 7, "b": "x"}]

    def test_run_script(self):
        session = Session(domains=DOMAINS)
        results = session.run_script(
            f"""
            {PAPER_DDL};
            INSERT INTO quote VALUES ('IBM', '1999-01-25', 100.0);
            INSERT INTO quote VALUES ('IBM', '1999-01-26', 120.0);
            INSERT INTO quote VALUES ('IBM', '1999-01-27', 90.0);
            SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date
            AS (X, Y, Z)
            WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
            """
        )
        assert len(results) == 1
        assert results[0].rows == (("IBM",),)


class TestSplitStatements:
    def test_semicolon_inside_string_preserved(self):
        parts = split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1")
        assert len(parts) == 2
        assert "'a;b'" in parts[0]

    def test_escaped_quote_inside_string(self):
        parts = split_statements("INSERT INTO t VALUES ('it''s;fine'); X")
        assert len(parts) == 2

    def test_blank_statements_dropped(self):
        assert split_statements(";;  ;") == []
