"""The failpoint registry: spec grammar, firing rules, zero-cost off."""

import pytest

from repro import failpoints
from repro.errors import FailpointError, TransientSourceError
from repro.failpoints import FailpointSpecError
from repro.obs import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with nothing armed."""
    failpoints.reset()
    yield
    failpoints.reset()


class TestOffByDefault:
    def test_nothing_armed_never_fires(self):
        assert failpoints.armed() is False
        assert failpoints.maybe_fail("checkpoint.rename") is False
        assert failpoints.mangle("checkpoint.write", b"abc") == b"abc"

    def test_unarmed_sites_are_not_counted(self):
        failpoints.configure("other.site")
        failpoints.maybe_fail("checkpoint.rename")
        assert failpoints.hits("checkpoint.rename") == 0


class TestSpecGrammar:
    def test_single_entry(self):
        assert failpoints.activate_spec("checkpoint.fsync=skip") == 1
        assert failpoints.active() == {"checkpoint.fsync": "skip"}

    def test_multiple_entries_semicolon_and_comma(self):
        count = failpoints.activate_spec(
            "checkpoint.fsync=skip; checkpoint.write=torn:12,"
            "serve.send_frame=raise:ConnectionResetError@3*1"
        )
        assert count == 3
        assert failpoints.active() == {
            "checkpoint.fsync": "skip",
            "checkpoint.write": "torn:12",
            "serve.send_frame": "raise:ConnectionResetError@3*1",
        }

    def test_raise_default_exception_is_failpoint_error(self):
        failpoints.activate_spec("a.site=raise")
        with pytest.raises(FailpointError, match="a.site"):
            failpoints.maybe_fail("a.site")

    def test_raise_named_exception(self):
        failpoints.activate_spec("a.site=raise:TransientSourceError")
        with pytest.raises(TransientSourceError):
            failpoints.maybe_fail("a.site")

    @pytest.mark.parametrize(
        "bad, match",
        [
            ("", "empty"),
            ("justasite", "malformed"),
            ("a.site=", "malformed"),
            ("=raise", "malformed"),
            ("a.site=explode", "unknown failpoint action"),
            ("a.site=raise:SystemExit", "unknown exception"),
            ("a.site=torn:xyz", "bad torn byte count"),
            ("a.site=skip:arg", "skip takes no argument"),
            ("a.site=raise@zero", "bad @hit"),
            ("a.site=raise*many", r"bad \*times"),
        ],
    )
    def test_malformed_specs_raise(self, bad, match):
        with pytest.raises(FailpointSpecError, match=match):
            failpoints.activate_spec(bad)
        # And arbitrary exception names can never be smuggled in.
        assert failpoints.active() in ({}, failpoints.active())

    def test_configure_validates_arguments(self):
        with pytest.raises(FailpointSpecError):
            failpoints.configure("a.site", at_hit=0)
        with pytest.raises(FailpointSpecError):
            failpoints.configure("a.site", times=0)
        with pytest.raises(FailpointSpecError):
            failpoints.configure("bad=name")


class TestFiringRules:
    def test_at_hit_defers_the_first_fires(self):
        failpoints.activate_spec("a.site=raise@3")
        assert failpoints.maybe_fail("a.site") is False
        assert failpoints.maybe_fail("a.site") is False
        with pytest.raises(FailpointError):
            failpoints.maybe_fail("a.site")
        assert failpoints.hits("a.site") == 3
        assert failpoints.fires("a.site") == 1

    def test_times_bounds_total_fires(self):
        failpoints.activate_spec("a.site=skip*2")
        assert failpoints.maybe_fail("a.site") is True
        assert failpoints.maybe_fail("a.site") is True
        assert failpoints.maybe_fail("a.site") is False  # budget spent
        assert failpoints.fires("a.site") == 2
        assert failpoints.hits("a.site") == 3

    def test_at_hit_and_times_compose(self):
        failpoints.activate_spec("a.site=raise@2*1")
        assert failpoints.maybe_fail("a.site") is False
        with pytest.raises(FailpointError):
            failpoints.maybe_fail("a.site")
        assert failpoints.maybe_fail("a.site") is False

    def test_skip_returns_true_to_skip_guarded_operation(self):
        failpoints.activate_spec("checkpoint.fsync=skip")
        fsynced = not failpoints.maybe_fail("checkpoint.fsync")
        assert fsynced is False


class TestMangle:
    def test_torn_truncates_to_half_by_default(self):
        failpoints.activate_spec("checkpoint.write=torn")
        assert failpoints.mangle("checkpoint.write", b"12345678") == b"1234"

    def test_torn_keep_bytes(self):
        failpoints.activate_spec("checkpoint.write=torn:3")
        assert failpoints.mangle("checkpoint.write", b"12345678") == b"123"

    def test_skip_drops_the_payload(self):
        failpoints.activate_spec("checkpoint.write=skip")
        assert failpoints.mangle("checkpoint.write", b"12345678") == b""

    def test_raise_raises(self):
        failpoints.activate_spec("checkpoint.write=raise:OSError")
        with pytest.raises(OSError):
            failpoints.mangle("checkpoint.write", b"12345678")

    def test_exhausted_torn_passes_payload_through(self):
        failpoints.activate_spec("checkpoint.write=torn*1")
        failpoints.mangle("checkpoint.write", b"12345678")
        assert failpoints.mangle("checkpoint.write", b"12345678") == b"12345678"


class TestScoped:
    def test_scoped_disarms_on_exit(self):
        with failpoints.scoped("a.site=raise"):
            assert failpoints.armed() is True
        assert failpoints.armed() is False

    def test_scoped_disarms_on_exception(self):
        with pytest.raises(RuntimeError):
            with failpoints.scoped("a.site=raise"):
                raise RuntimeError("boom")
        assert failpoints.armed() is False

    def test_nested_disjoint_scopes_compose(self):
        with failpoints.scoped("a.site=raise"):
            with failpoints.scoped("b.site=skip"):
                assert set(failpoints.active()) == {"a.site", "b.site"}
            assert set(failpoints.active()) == {"a.site"}
        assert failpoints.active() == {}

    def test_clear_single_site(self):
        failpoints.activate_spec("a.site=raise;b.site=skip")
        failpoints.clear("a.site")
        assert set(failpoints.active()) == {"b.site"}
        failpoints.clear()
        assert failpoints.armed() is False


class TestEnvActivation:
    def test_load_from_env(self):
        armed = failpoints.load_from_env({"REPRO_FAILPOINTS": "a.site=skip"})
        assert armed == 1
        assert failpoints.active() == {"a.site": "skip"}

    def test_empty_env_is_a_no_op(self):
        assert failpoints.load_from_env({}) == 0
        assert failpoints.armed() is False

    def test_malformed_env_spec_fails_loudly(self):
        with pytest.raises(FailpointSpecError):
            failpoints.load_from_env({"REPRO_FAILPOINTS": "nonsense"})


class TestMetrics:
    def test_hit_and_fire_counters(self):
        registry = MetricsRegistry()
        failpoints.set_metrics(registry)
        failpoints.activate_spec("a.site=skip@2")
        failpoints.maybe_fail("a.site")
        failpoints.maybe_fail("a.site")
        hits = registry.counter(
            "repro_failpoint_hits_total", labelnames=("site",)
        )
        fires = registry.counter(
            "repro_failpoint_fires_total", labelnames=("site",)
        )
        assert hits.labels(site="a.site").value == 2
        assert fires.labels(site="a.site").value == 1

    def test_counters_snapshot(self):
        failpoints.activate_spec("a.site=skip;b.site=raise@9")
        failpoints.maybe_fail("a.site")
        failpoints.maybe_fail("b.site")
        assert failpoints.counters() == {
            "a.site": {"hits": 1, "fires": 1},
            "b.site": {"hits": 1, "fires": 0},
        }

    def test_reconfigure_resets_counters(self):
        failpoints.activate_spec("a.site=skip")
        failpoints.maybe_fail("a.site")
        failpoints.activate_spec("a.site=skip")
        assert failpoints.hits("a.site") == 0
