"""Differential suite: the columnar evaluator must be bit-identical to row.

The tentpole contract of the columnar storage + vectorized-kernel path
(see ``docs/performance.md``): for every query, dataset, matcher, and
worker count, executing with ``evaluator="columnar"`` — against an
in-memory table or an out-of-core mmap'd ``.rcol`` file — produces the
same :class:`~repro.engine.result.Result`, the same instrumented
predicate-test counts, the same skip accounting, the same diagnostics,
and the same budget spend as the row-path oracle.  Hypothesis sweeps
generated queries × random-walk tables across the full matrix, and a
committed corpus (``tests/engine/data/columnar_corpus.json``) replays
past findings deterministically.
"""

from __future__ import annotations

import datetime as dt
import json
import os
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.catalog import Catalog
from repro.engine.columnar import load_columnar, write_columnar
from repro.engine.executor import Executor
from repro.engine.parallel import split_partitions
from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.match.base import Instrumentation
from repro.pattern.predicates import AttributeDomains
from repro.resilience import ResourceLimits

DOMAINS = AttributeDomains.prices()
VARS = "ABCD"
CORPUS_PATH = Path(__file__).parent / "data" / "columnar_corpus.json"

#: Registry matchers swept by the differential matrix.  "ops-nonstar"
#: joins only for star-free queries (it raises PlanningError on stars).
MATCHERS = ["ops", "naive", "backtracking"]


def _condition_pool(var, previous_var):
    pool = [
        f"{var}.price > {var}.previous.price",
        f"{var}.price < {var}.previous.price",
        f"{var}.price < 60",
        f"{var}.price > 40",
        f"{var}.price >= 0.98 * {var}.previous.price",
        f"({var}.price < 35 OR {var}.price > 65)",
        f"NOT {var}.price > 55",
    ]
    if previous_var is not None:
        # Starred endpoints turn this into a residual — the kernel plan
        # must decline the element and fall back per element.
        pool.append(f"{var}.price > {previous_var}.price")
    return pool


@st.composite
def queries(draw):
    arity = draw(st.integers(1, 4))
    names = list(VARS[:arity])
    stars = [draw(st.booleans()) for _ in names]
    conjuncts = []
    for index, name in enumerate(names):
        previous_var = names[index - 1] if index > 0 else None
        pool = _condition_pool(name, previous_var)
        picks = draw(st.lists(st.sampled_from(pool), min_size=0, max_size=2))
        conjuncts.extend(picks)
    if not conjuncts:
        conjuncts = [f"{names[0]}.price > 0"]
    pattern = ", ".join(
        ("*" if star else "") + name for name, star in zip(names, stars)
    )
    return (
        f"SELECT {names[0]}.date FROM quote CLUSTER BY name SEQUENCE BY date "
        f"AS ({pattern}) WHERE " + " AND ".join(conjuncts)
    )


@st.composite
def price_steps(draw):
    """Per-ticker random-walk steps, the deterministic table seed."""
    return {
        ticker: draw(
            st.lists(
                st.sampled_from([-8.0, -3.0, -1.0, 1.0, 3.0, 8.0]),
                min_size=0,
                max_size=30,
            )
        )
        for ticker in ("AAA", "BBB")
    }


def build_table(steps_by_ticker) -> Table:
    table = Table(
        "quote", [("name", "str"), ("date", "date"), ("price", "float")]
    )
    base = dt.date(2000, 1, 3)
    for ticker, steps in sorted(steps_by_ticker.items()):
        value = 50.0
        for offset, step in enumerate(steps):
            value = max(10.0, min(90.0, value + step))
            table.insert(
                {
                    "name": ticker,
                    "date": base + dt.timedelta(days=offset),
                    "price": value,
                }
            )
    return table


def run(catalog, sql, *, matcher="ops", evaluator="row", workers=1, limits=None):
    instrumentation = Instrumentation()
    instrumentation.enable_detail()
    executor = Executor(
        catalog,
        domains=DOMAINS,
        matcher=matcher,
        evaluator=evaluator,
        workers=workers,
        parallel_mode="thread",
        limits=limits,
    )
    result, report = executor.execute_with_report(sql, instrumentation)
    return result, report, instrumentation


def fingerprint(result, report, instrumentation, detail=True):
    """Everything the equivalence contract pins, as one comparable value.

    ``detail=False`` drops the per-element test histogram: parallel
    workers only record it under tracing, so it is a serial-only part of
    the contract (true of the row path just the same).
    """
    return (
        result.columns,
        tuple(result.rows),
        report.predicate_tests,
        report.matches,
        report.clusters_searched,
        report.rows_scanned,
        instrumentation.skips,
        instrumentation.skip_distance,
        dict(instrumentation.tests_by_element or {}) if detail else None,
        tuple(report.diagnostics.downgrades),
        tuple(report.diagnostics.limits_hit),
    )


def assert_equivalent(table, sql, matchers=MATCHERS):
    catalog = Catalog([table])
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "quote.rcol")
        write_columnar(table, path)
        mapped = load_columnar(path)
        try:
            mapped_catalog = Catalog([mapped])
            for matcher in matchers:
                oracle = fingerprint(*run(catalog, sql, matcher=matcher))
                for evaluator in ("columnar", "auto"):
                    got = fingerprint(
                        *run(catalog, sql, matcher=matcher, evaluator=evaluator)
                    )
                    assert got == oracle, (matcher, evaluator)
                mmapped = fingerprint(
                    *run(mapped_catalog, sql, matcher=matcher, evaluator="columnar")
                )
                assert mmapped == oracle, (matcher, "mmap")
                parallel = fingerprint(
                    *run(
                        catalog, sql, matcher=matcher, evaluator="columnar",
                        workers=4,
                    ),
                    detail=False,
                )
                oracle_nodetail = fingerprint(
                    *run(catalog, sql, matcher=matcher), detail=False
                )
                assert parallel == oracle_nodetail, (matcher, "workers=4")
        finally:
            mapped.close()


@settings(max_examples=40, deadline=None)
@given(queries(), price_steps())
def test_columnar_equivalence_sweep(sql, steps):
    assert_equivalent(build_table(steps), sql)


def test_columnar_corpus_replays():
    """The committed corpus of past cases replays bit-identically."""
    corpus = json.loads(CORPUS_PATH.read_text())
    assert corpus, "corpus must not be empty"
    for case in corpus:
        assert_equivalent(build_table(case["steps"]), case["sql"])


def test_star_free_ops_nonstar_equivalence():
    """The paper-literal OPS loop joins the matrix on star-free patterns."""
    table = build_table(
        {"AAA": [-3.0, 1.0, 3.0, -8.0, 8.0, -1.0] * 4, "BBB": [1.0, -1.0] * 8}
    )
    sql = (
        "SELECT A.date FROM quote CLUSTER BY name SEQUENCE BY date "
        "AS (A, B, C) WHERE A.price < A.previous.price "
        "AND B.price > 40 AND C.price > B.price"
    )
    assert_equivalent(table, sql, matchers=MATCHERS + ["ops-nonstar"])


def test_budget_spend_parity_under_max_matches():
    """A capped query spends its budget identically on both paths."""
    table = build_table({"AAA": [-1.0, 1.0] * 15, "BBB": [1.0, -1.0] * 15})
    sql = (
        "SELECT A.date FROM quote CLUSTER BY name SEQUENCE BY date "
        "AS (A, B) WHERE A.price < A.previous.price AND B.price > A.previous.price"
    )
    limits = ResourceLimits(max_matches=2)
    oracle = fingerprint(*run(Catalog([table]), sql, limits=limits))
    got = fingerprint(
        *run(Catalog([table]), sql, evaluator="columnar", limits=limits)
    )
    assert got == oracle
    # Parallel: compare against the parallel row path (workers may test
    # more predicates than serial finding capped-away matches, but row
    # and columnar workers must agree with each other exactly).
    row_parallel = fingerprint(
        *run(Catalog([table]), sql, limits=limits, workers=4), detail=False
    )
    columnar_parallel = fingerprint(
        *run(
            Catalog([table]), sql, evaluator="columnar", limits=limits,
            workers=4,
        ),
        detail=False,
    )
    assert columnar_parallel == row_parallel


def test_interpreted_oracle_stays_kernel_free():
    """codegen=False (the differential oracle) must never engage kernels,
    even when evaluator='columnar' asks for them."""
    table = build_table({"AAA": [-1.0, 1.0] * 10, "BBB": [3.0, -3.0] * 10})
    sql = (
        "SELECT A.date FROM quote CLUSTER BY name SEQUENCE BY date "
        "AS (A, *B) WHERE A.price < A.previous.price AND B.price > 40"
    )
    catalog = Catalog([table])
    plain = Executor(catalog, domains=DOMAINS, codegen=False).execute(sql)
    columnar = Executor(
        catalog, domains=DOMAINS, codegen=False, evaluator="columnar"
    ).execute(sql)
    compiled = Executor(catalog, domains=DOMAINS, evaluator="columnar").execute(sql)
    assert plain == columnar == compiled


def test_invalid_evaluator_mode_rejected():
    with pytest.raises(ExecutionError):
        Executor(Catalog([build_table({"AAA": []})]), evaluator="vector")


# ----------------------------------------------------------------------
# Weighted splitter invariants (candidate-count work weighting)
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=40),
    st.integers(1, 8),
)
def test_weighted_split_invariants(weights, workers):
    partitions = list(range(len(weights)))
    units = split_partitions(partitions, workers, weights=weights)
    flattened = [p for unit in units for p in unit.partitions]
    assert flattened == partitions  # every item once, order preserved
    assert all(unit.partitions for unit in units)  # no empty unit
    assert [unit.index for unit in units] == list(range(len(units)))


def test_weighted_split_validation():
    with pytest.raises(ExecutionError):
        split_partitions([1, 2], 2, unit_size=1, weights=[1, 1])
    with pytest.raises(ExecutionError):
        split_partitions([1, 2], 2, weights=[1])
    with pytest.raises(ExecutionError):
        split_partitions([1, 2], 2, weights=[1, -1])
