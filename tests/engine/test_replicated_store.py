"""ReplicatedCheckpointStore: quorum writes, repair-on-load, generations."""

import os

import pytest

from repro import failpoints
from repro.errors import RecoveryError
from repro.recovery import CheckpointStore, ReplicatedCheckpointStore
from repro.resilience import Diagnostics


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


def three_replicas(tmp_path):
    return [str(tmp_path / f"replica{i}" / "ck") for i in range(3)]


def corrupt(path):
    with open(path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        handle.write(b"\xff")


class TestConstruction:
    def test_requires_at_least_one_path(self):
        with pytest.raises(ValueError, match="at least one"):
            ReplicatedCheckpointStore([])

    def test_rejects_duplicate_paths(self, tmp_path):
        path = str(tmp_path / "ck")
        with pytest.raises(ValueError, match="distinct"):
            ReplicatedCheckpointStore([path, path])

    def test_quorum_defaults_to_majority(self, tmp_path):
        store = ReplicatedCheckpointStore(three_replicas(tmp_path))
        assert store.quorum == 2

    def test_quorum_bounds_validated(self, tmp_path):
        paths = three_replicas(tmp_path)
        with pytest.raises(ValueError):
            ReplicatedCheckpointStore(paths, quorum=0)
        with pytest.raises(ValueError):
            ReplicatedCheckpointStore(paths, quorum=4)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        store = ReplicatedCheckpointStore(three_replicas(tmp_path))
        assert not store.exists()
        store.save({"offset": 7})
        assert store.exists()
        assert store.load() == {"offset": 7}

    def test_every_replica_is_written(self, tmp_path):
        paths = three_replicas(tmp_path)
        ReplicatedCheckpointStore(paths).save("state")
        for path in paths:
            assert os.path.exists(path)

    def test_generation_increments_per_save(self, tmp_path):
        store = ReplicatedCheckpointStore(three_replicas(tmp_path))
        assert store.generation is None
        store.save("a")
        assert store.generation == 1
        store.save("b")
        assert store.generation == 2

    def test_fresh_process_continues_above_on_disk_generation(self, tmp_path):
        paths = three_replicas(tmp_path)
        first = ReplicatedCheckpointStore(paths)
        first.save("a")
        first.save("b")
        second = ReplicatedCheckpointStore(paths)
        second.save("c")
        assert second.generation == 3
        assert second.load() == "c"


class TestRepairOnLoad:
    def test_corrupt_replica_is_outvoted_and_repaired(self, tmp_path):
        paths = three_replicas(tmp_path)
        store = ReplicatedCheckpointStore(paths)
        store.save("good")
        corrupt(paths[1])
        diagnostics = Diagnostics()
        fresh = ReplicatedCheckpointStore(paths)
        assert fresh.load(diagnostics=diagnostics) == "good"
        assert fresh.repairs == 1
        assert diagnostics.replicas_repaired == 1
        # The repaired replica now reads clean on its own.
        assert ReplicatedCheckpointStore([paths[1]]).load() == "good"

    def test_wiped_replica_directory_is_repaired(self, tmp_path):
        paths = three_replicas(tmp_path)
        store = ReplicatedCheckpointStore(paths)
        store.save("good")
        os.remove(paths[2])
        fresh = ReplicatedCheckpointStore(paths)
        assert fresh.load() == "good"
        assert os.path.exists(paths[2])
        assert fresh.repairs == 1

    def test_stale_replica_loses_to_newer_generation(self, tmp_path):
        paths = three_replicas(tmp_path)
        store = ReplicatedCheckpointStore(paths)
        store.save("old")
        # Write a newer generation to replicas 0 and 1 only, simulating a
        # crash mid-fan-out that left replica 2 behind.
        partial = ReplicatedCheckpointStore(paths[:2])
        partial.save("new")
        fresh = ReplicatedCheckpointStore(paths)
        assert fresh.load() == "new"
        assert fresh.repairs == 1  # replica 2 caught up
        assert ReplicatedCheckpointStore([paths[2]]).load() == "new"

    def test_all_replicas_missing_raises(self, tmp_path):
        store = ReplicatedCheckpointStore(three_replicas(tmp_path))
        with pytest.raises(RecoveryError, match="no checkpoint"):
            store.load()

    def test_legacy_unstamped_file_adopted_as_generation_zero(self, tmp_path):
        paths = three_replicas(tmp_path)
        os.makedirs(os.path.dirname(paths[0]), exist_ok=True)
        CheckpointStore(paths[0]).save("legacy-state")
        store = ReplicatedCheckpointStore(paths)
        assert store.load() == "legacy-state"
        # The next save supersedes the adopted generation everywhere.
        store.save("upgraded")
        assert ReplicatedCheckpointStore(paths).load() == "upgraded"


class TestQuorumWrites:
    def test_minority_write_failure_is_tolerated(self, tmp_path):
        paths = three_replicas(tmp_path)
        store = ReplicatedCheckpointStore(paths)
        failpoints.activate_spec("checkpoint.replica_write=raise:OSError*1")
        store.save("state")  # first replica write fails, quorum still met
        assert store.write_failures == 1
        assert store.load() == "state"

    def test_losing_quorum_raises_recovery_error(self, tmp_path):
        paths = three_replicas(tmp_path)
        store = ReplicatedCheckpointStore(paths)
        failpoints.activate_spec("checkpoint.replica_write=raise:OSError*2")
        with pytest.raises(RecoveryError, match="quorum"):
            store.save("state")

    def test_write_failures_reach_diagnostics(self, tmp_path):
        diagnostics = Diagnostics()
        store = ReplicatedCheckpointStore(
            three_replicas(tmp_path), diagnostics=diagnostics
        )
        failpoints.activate_spec("checkpoint.replica_write=raise:OSError*1")
        store.save("state")
        assert diagnostics.replica_write_failures == 1
        assert any("replica write failed" in w for w in diagnostics.warnings)
