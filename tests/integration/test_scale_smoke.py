"""Scale smoke tests: long patterns and long inputs stay correct and sane."""

import random

from repro.bench.workloads import staircase_rows, staircase_spec
from repro.match.base import Instrumentation
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import compile_pattern


class TestLongPatterns:
    def test_m41_staircase_compiles_and_matches(self):
        spec = staircase_spec(40)
        plan = compile_pattern(spec)
        assert plan.m == 41
        for j in range(1, 42):
            assert 1 <= plan.shift(j) <= j
        rows = staircase_rows(3000, min_run=4, max_run=9, seed=9)
        ops_inst = Instrumentation()
        matches = OpsStarMatcher().find_matches(rows, plan, ops_inst)
        assert matches == NaiveMatcher().find_matches(rows, plan)
        # OPS stays near-linear even at this pattern length.
        assert ops_inst.tests < 6 * len(rows)

    def test_very_long_nonstar_pattern(self):
        from repro.bench.workloads import constant_pattern_spec

        plan = compile_pattern(constant_pattern_spec([10.0] * 30 + [11.0]))
        rows = [{"price": 10.0}] * 2000
        inst = Instrumentation()
        assert OpsStarMatcher().find_matches(rows, plan, inst) == []
        assert inst.tests <= 2 * len(rows)


class TestLongInputs:
    def test_hundred_k_rows_linearity(self):
        """A 100k-row scan must stay within a small constant per row."""
        rng = random.Random(61)
        rows = []
        value = 50.0
        for _ in range(100_000):
            value = max(20.0, min(90.0, value + rng.choice([-2.0, -0.5, 0.5, 2.0])))
            rows.append({"price": value})
        plan = compile_pattern(staircase_spec(4))
        inst = Instrumentation()
        OpsStarMatcher().find_matches(rows, plan, inst)
        assert inst.tests < 4 * len(rows)
