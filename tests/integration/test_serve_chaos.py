"""Chaos harness for the always-on query service.

Injects the fault classes a long-lived service meets in production —
worker death mid-query, client disconnect mid-stream, corrupt frames,
expired deadlines, and a forced server restart — and asserts the
graceful-degradation contract:

1. every fault yields a *structured* error response (stable code,
   optional ``retry_after``), never a hung connection or a stack trace
   on the wire;
2. tenants are isolated: while one tenant's requests are being killed,
   a concurrent well-behaved tenant receives results byte-identical to
   serial :meth:`Executor.execute`;
3. the server survives every fault: after each storm it still answers
   a plain query correctly;
4. durable subscriptions are exactly-once across a forced restart: a
   subscriber reconnecting with its ``after_seq`` high-water mark
   receives each match exactly once, no duplicates, no gaps.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.pattern.predicates import AttributeDomains
from repro.serve import QueryServer, ServeClient, ServerThread, TenantQuota
from repro.serve.client import ServeError
from repro.serve.protocol import decode_frame, encode_frame

from tests.serve.conftest import CROSSING_QUERY, RISING_QUERY, price_table


def expected_wire_rows(catalog: Catalog, sql: str) -> list:
    """Serial reference, rendered exactly as the server renders it."""
    result = Executor(catalog, domains=AttributeDomains.prices()).execute(sql)
    frame = encode_frame({"rows": [list(row) for row in result.rows]})
    return json.loads(frame)["rows"]


@pytest.fixture
def catalog() -> Catalog:
    return Catalog([price_table(rows=90)])


class TestWorkerDeath:
    def test_killed_worker_is_a_structured_error_and_tenants_isolated(
        self, catalog
    ):
        """Fault class 1: the worker thread dies mid-query.

        The doomed tenant gets an ``internal`` error; a concurrent
        healthy tenant, racing the same server the whole time, sees
        results byte-identical to serial execution.
        """
        kills = threading.Event()
        kills.set()

        def die_for_doomed(op, tenant, sql):
            if tenant == "doomed" and kills.is_set():
                raise RuntimeError("simulated worker death")

        server = QueryServer(
            catalog,
            domains=AttributeDomains.prices(),
            fault_injector=die_for_doomed,
            pool_workers=4,
        )
        expected = expected_wire_rows(catalog, CROSSING_QUERY)
        healthy_results: list = []
        doomed_errors: list = []

        with ServerThread(server) as handle:
            def healthy_loop():
                with ServeClient(*handle.address, tenant="healthy") as c:
                    for _ in range(6):
                        healthy_results.append(c.query(CROSSING_QUERY).rows)

            def doomed_loop():
                with ServeClient(*handle.address, tenant="doomed") as c:
                    for _ in range(6):
                        try:
                            c.query(CROSSING_QUERY)
                        except ServeError as error:
                            doomed_errors.append(error)

            threads = [
                threading.Thread(target=healthy_loop),
                threading.Thread(target=doomed_loop),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)

            assert len(doomed_errors) == 6
            assert all(e.code == "internal" for e in doomed_errors)
            assert all(
                "simulated worker death" in e.message for e in doomed_errors
            )
            assert len(healthy_results) == 6
            assert all(rows == expected for rows in healthy_results)

            # The fault stops; the once-doomed tenant recovers fully.
            kills.clear()
            with ServeClient(*handle.address, tenant="doomed") as c:
                assert c.query(CROSSING_QUERY).rows == expected


class TestClientDisconnect:
    def test_disconnect_mid_stream_frees_the_slot(self, catalog):
        """Fault class 2: the subscriber vanishes mid-stream.

        The server must cancel the producer, release the tenant's
        admission slot and the subscription id, and keep serving.
        """
        server = QueryServer(
            catalog,
            domains=AttributeDomains.prices(),
            default_quota=TenantQuota(max_concurrent=1, max_queued=0),
        )
        with ServerThread(server) as handle:
            host, port = handle.address
            sock = socket.create_connection((host, port), timeout=10.0)
            reader = sock.makefile("rb")
            sock.sendall(
                encode_frame(
                    {
                        "id": 1,
                        "op": "subscribe",
                        "tenant": "default",
                        "sql": CROSSING_QUERY,
                        "subscription": "vanishing",
                        "after_seq": -1,
                    }
                )
            )
            begin = decode_frame(reader.readline())
            assert begin["event"] == "begin"
            # Read one row, then vanish without a goodbye.
            first = decode_frame(reader.readline())
            assert first["event"] == "row"
            sock.close()

            # The slot comes back (max_concurrent=1, so a wedged server
            # would refuse everything) and the subscription id is free.
            deadline = 10.0
            import time as _time

            until = _time.monotonic() + deadline
            last_error = None
            while _time.monotonic() < until:
                try:
                    with ServeClient(host, port) as client:
                        rows = list(
                            client.subscribe(CROSSING_QUERY, "vanishing")
                        )
                    assert rows
                    break
                except ServeError as error:
                    last_error = error
                    assert error.code in {
                        "backpressure",
                        "subscription_busy",
                    }
                    _time.sleep(0.05)
            else:
                pytest.fail(f"slot never freed: {last_error}")

    def test_disconnect_mid_query_keeps_server_healthy(self, catalog):
        server = QueryServer(catalog, domains=AttributeDomains.prices())
        expected = expected_wire_rows(catalog, RISING_QUERY)
        with ServerThread(server) as handle:
            host, port = handle.address
            # Fire a query and slam the connection without reading.
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.sendall(
                encode_frame({"id": 1, "op": "query", "sql": RISING_QUERY})
            )
            sock.close()
            with ServeClient(host, port) as client:
                assert client.query(RISING_QUERY).rows == expected


class TestCorruptFrames:
    """Fault class 3: garbage on the wire."""

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not json at all\n",
            b"[1, 2, 3]\n",
            b'"just a string"\n',
            b"{truncated\n",
            b"\xde\xad\xbe\xef\n",
        ],
    )
    def test_garbage_gets_structured_error(self, catalog, garbage):
        server = QueryServer(catalog, domains=AttributeDomains.prices())
        with ServerThread(server) as handle:
            host, port = handle.address
            with socket.create_connection((host, port), timeout=10.0) as sock:
                reader = sock.makefile("rb")
                sock.sendall(garbage)
                reply = decode_frame(reader.readline())
                assert reply["ok"] is False
                assert reply["error"]["code"] == "corrupt_frame"
                # The connection is still usable afterwards.
                sock.sendall(encode_frame({"id": 2, "op": "ping"}))
                assert decode_frame(reader.readline())["pong"] is True

    def test_oversize_frame_closes_connection_with_error(self, catalog):
        server = QueryServer(catalog, domains=AttributeDomains.prices())
        with ServerThread(server) as handle:
            host, port = handle.address
            with socket.create_connection((host, port), timeout=30.0) as sock:
                reader = sock.makefile("rb")
                # 5 MiB of unterminated garbage: unrecoverable mid-line.
                chunk = b"x" * 65536
                for _ in range(80):
                    sock.sendall(chunk)
                sock.sendall(b"\n")
                reply = decode_frame(reader.readline())
                assert reply["error"]["code"] == "corrupt_frame"
                assert reader.readline() == b""  # closed

            # Other connections never noticed.
            with ServeClient(host, port) as client:
                assert client.ping()["pong"] is True


class TestExpiredDeadlines:
    """Fault class 4: requests whose time has already run out."""

    def test_already_expired_deadline(self, catalog):
        server = QueryServer(catalog, domains=AttributeDomains.prices())
        with ServerThread(server) as handle:
            with ServeClient(*handle.address) as client:
                for timeout in (0, -1, -0.001):
                    with pytest.raises(ServeError) as info:
                        client.query(RISING_QUERY, timeout=timeout)
                    assert info.value.code == "deadline"
                # The connection survives the refusals.
                assert client.query(RISING_QUERY).rows

    def test_tiny_deadline_returns_partial_not_hang(self, catalog):
        server = QueryServer(catalog, domains=AttributeDomains.prices())
        with ServerThread(server) as handle:
            with ServeClient(*handle.address) as client:
                # A microscopic (but unexpired) deadline trips inside
                # execution: a partial result with a structured limit
                # diagnostic, never a hang or a connection error.
                reply = client.query(RISING_QUERY, timeout=1e-6)
        assert reply.limit_hit
        assert any("deadline" in r for r in reply.limits_hit)


class TestForcedRestart:
    def test_subscription_exactly_once_across_restart(self, catalog, tmp_path):
        """The headline recovery guarantee, end to end over sockets.

        A subscriber consumes part of a durable subscription; the server
        is force-stopped (no drain) mid-stream; a new server over the
        same checkpoint directory comes up; the subscriber reconnects
        with its high-water mark.  Union of deliveries == the batch
        reference, with zero duplicates.
        """
        checkpoint_dir = str(tmp_path / "ckpt")
        expected = expected_wire_rows(catalog, CROSSING_QUERY)
        assert len(expected) >= 4

        delivered: list = []
        gate = threading.Event()

        def start_server() -> ServerThread:
            return ServerThread(
                QueryServer(
                    catalog,
                    domains=AttributeDomains.prices(),
                    checkpoint_dir=checkpoint_dir,
                    # Checkpoint every row so the forced restart lands
                    # between delivery and high-water persistence often.
                    subscription_checkpoint_every=1,
                    fault_injector=lambda op, t, s: gate.wait(timeout=5.0)
                    if op == "subscribe"
                    else None,
                )
            ).start()

        handle = start_server()
        host, port = handle.address
        client = ServeClient(host, port)
        rows = client.subscribe(CROSSING_QUERY, "durable")
        consumed = 0
        try:
            for row in rows:
                delivered.append((row.seq, row.values))
                consumed += 1
                if consumed == 2:
                    break  # leave the rest in flight
        finally:
            gate.set()
        handle.force_stop()  # simulated crash: no drain, no goodbye
        try:
            client.close()
        except OSError:
            pass

        # Restart over the same durable state; reconnect with the mark.
        handle = start_server()
        gate.set()
        host, port = handle.address
        try:
            with ServeClient(host, port) as client:
                after = max(seq for seq, _ in delivered)
                for row in client.subscribe(
                    CROSSING_QUERY, "durable", after_seq=after
                ):
                    delivered.append((row.seq, row.values))
        finally:
            handle.stop(grace=2.0)

        seqs = [seq for seq, _ in delivered]
        assert len(seqs) == len(set(seqs)), "duplicate delivery"
        assert [values for _, values in delivered] == expected

    def test_query_after_restart_identical(self, catalog):
        expected = expected_wire_rows(catalog, RISING_QUERY)
        handle = ServerThread(
            QueryServer(catalog, domains=AttributeDomains.prices())
        ).start()
        with ServeClient(*handle.address) as client:
            assert client.query(RISING_QUERY).rows == expected
        handle.force_stop()

        handle = ServerThread(
            QueryServer(catalog, domains=AttributeDomains.prices())
        ).start()
        try:
            with ServeClient(*handle.address) as client:
                assert client.query(RISING_QUERY).rows == expected
        finally:
            handle.stop(grace=2.0)


class TestChaosStorm:
    def test_mixed_fault_storm_with_byte_identical_survivor(self, catalog):
        """All fault classes at once against one server; one measured
        tenant must come through with byte-identical results."""
        def flaky(op, tenant, sql):
            if tenant == "flaky":
                raise OSError("simulated I/O failure in worker")

        server = QueryServer(
            catalog,
            domains=AttributeDomains.prices(),
            fault_injector=flaky,
            pool_workers=4,
            quotas={"starved": TenantQuota(rows_per_second=1.0)},
        )
        expected = expected_wire_rows(catalog, CROSSING_QUERY)
        survivor_rows: list = []
        structured: dict[str, int] = {}
        lock = threading.Lock()

        def record(code: str) -> None:
            with lock:
                structured[code] = structured.get(code, 0) + 1

        with ServerThread(server) as handle:
            host, port = handle.address

            def survivor():
                with ServeClient(host, port, tenant="survivor") as c:
                    for _ in range(5):
                        survivor_rows.append(c.query(CROSSING_QUERY).rows)

            def worker_killer():
                with ServeClient(host, port, tenant="flaky") as c:
                    for _ in range(5):
                        try:
                            c.query(CROSSING_QUERY)
                        except ServeError as error:
                            record(error.code)

            def frame_corruptor():
                for _ in range(5):
                    with socket.create_connection(
                        (host, port), timeout=10.0
                    ) as sock:
                        reader = sock.makefile("rb")
                        sock.sendall(b"}{ total garbage\n")
                        reply = decode_frame(reader.readline())
                        record(reply["error"]["code"])

            def deadline_expirer():
                with ServeClient(host, port, tenant="hasty") as c:
                    for _ in range(5):
                        try:
                            c.query(CROSSING_QUERY, timeout=-1)
                        except ServeError as error:
                            record(error.code)

            def quota_exhauster():
                with ServeClient(host, port, tenant="starved") as c:
                    for _ in range(5):
                        try:
                            c.query(CROSSING_QUERY)
                        except ServeError as error:
                            record(error.code)

            threads = [
                threading.Thread(target=fn)
                for fn in (
                    survivor,
                    worker_killer,
                    frame_corruptor,
                    deadline_expirer,
                    quota_exhauster,
                )
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)

            # Every fault class produced its structured error...
            assert structured.get("internal", 0) == 5
            assert structured.get("corrupt_frame", 0) == 5
            assert structured.get("deadline", 0) == 5
            assert structured.get("quota_exhausted", 0) >= 1
            # ...and the survivor never saw anything but perfect results.
            assert len(survivor_rows) == 5
            assert all(rows == expected for rows in survivor_rows)

            # The server itself is still healthy after the storm.
            with ServeClient(host, port) as client:
                assert client.query(CROSSING_QUERY).rows == expected


class TestRejectionAccounting:
    def test_stats_reconcile_with_observed_refusals(self, catalog):
        """Every structured refusal a client observed is in the stats.

        Drives one instance of each admission-refusal class —
        backpressure, subscription_busy, deadline, quota_exhausted —
        while counting the ``ServeError`` codes each tenant actually
        received, then asserts the per-tenant ``rejections`` counters
        in the stats op equal the observed counts *exactly*: no
        double-counting, no refusal the operator can't see.
        """
        release = threading.Event()
        entered = threading.Event()

        def block_blocked(op, tenant, sql):
            if tenant == "blocked":
                entered.set()
                release.wait(timeout=30.0)

        server = QueryServer(
            catalog,
            domains=AttributeDomains.prices(),
            fault_injector=block_blocked,
            pool_workers=4,
            quotas={
                "blocked": TenantQuota(max_concurrent=1, max_queued=0),
                "starved": TenantQuota(rows_per_second=1.0),
            },
        )
        observed: dict[str, dict[str, int]] = {}

        def record(tenant: str, code: str) -> None:
            per_tenant = observed.setdefault(tenant, {})
            per_tenant[code] = per_tenant.get(code, 0) + 1

        with ServerThread(server) as handle:
            host, port = handle.address
            # A subscription for "blocked" is admitted, then its
            # producer wedges in the injector: the tenant's only run
            # slot stays held for the rest of the storm.
            holder = ServeClient(host, port, tenant="blocked")
            holder._send(
                {
                    "id": 1,
                    "op": "subscribe",
                    "tenant": "blocked",
                    "sql": CROSSING_QUERY,
                    "subscription": "wedged",
                    "after_seq": -1,
                }
            )
            try:
                begin = holder._check(holder._recv())
                assert begin["event"] == "begin"
                assert entered.wait(timeout=10.0)

                with ServeClient(host, port, tenant="blocked") as c:
                    for _ in range(2):  # slot held, queue closed
                        try:
                            c.query(CROSSING_QUERY)
                        except ServeError as error:
                            record("blocked", error.code)
                    try:  # the id is busy; refused before admission
                        list(c.subscribe(CROSSING_QUERY, "wedged"))
                    except ServeError as error:
                        record("blocked", error.code)

                with ServeClient(host, port, tenant="hasty") as c:
                    for _ in range(3):
                        try:
                            c.query(CROSSING_QUERY, timeout=0)
                        except ServeError as error:
                            record("hasty", error.code)

                with ServeClient(host, port, tenant="starved") as c:
                    c.query(CROSSING_QUERY)  # drains the row budget
                    for _ in range(2):
                        try:
                            c.query(CROSSING_QUERY)
                        except ServeError as error:
                            record("starved", error.code)

                with ServeClient(host, port, tenant="survivor") as c:
                    c.query(CROSSING_QUERY)
                    stats = c.stats()
            finally:
                release.set()
                holder.close()

        assert observed == {
            "blocked": {"backpressure": 2, "subscription_busy": 1},
            "hasty": {"deadline": 3},
            "starved": {"quota_exhausted": 2},
        }
        tenants = stats["admission"]["tenants"]
        for tenant, codes in observed.items():
            assert tenants[tenant]["rejections"] == codes, tenant
        assert tenants["survivor"]["rejections"] == {}
        # Admissions reconcile too: the wedged subscription plus the
        # budget-draining and surviving queries, nothing else.
        assert tenants["blocked"]["admitted"] == 1
        assert tenants["hasty"]["admitted"] == 0
        assert tenants["starved"]["admitted"] == 1
        assert tenants["survivor"]["admitted"] == 1
