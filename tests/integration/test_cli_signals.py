"""Subprocess kill tests: SIGINT/SIGTERM land as graceful cancellation.

These run the real CLI in a child process and deliver real signals, so
they cover the full path: signal handler -> CancelToken -> budget check
inside the matcher loop -> partial results + final checkpoint ->
diagnostics JSON -> exit code 3.  Skipped on platforms without POSIX
signals.
"""

from __future__ import annotations

import csv
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="requires POSIX signal delivery"
)

EXIT_LIMIT_HIT = 3
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Every adjacent rising pair matches: on a monotone series that is one
#: match per row, so ``--throttle`` paces the stream one row at a time.
RISING_SQL = (
    "SELECT X.day, Y.day FROM quote SEQUENCE BY day AS (X, Y) "
    "WHERE Y.price > X.price"
)

#: Always-true star pattern under the naive matcher: every row is a
#: candidate start and the star extends to the end of the input, so a
#: large CSV keeps the matcher busy for tens of seconds — long enough
#: for a signal to reliably land mid-run.
SLOW_SQL = (
    "SELECT X.day, S.day FROM quote SEQUENCE BY day AS (X, *Y, S) "
    "WHERE Y.price > 0 AND S.price > 0"
)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _write_quotes(path: Path, rows: int) -> str:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["name", "day", "price"])
        for day in range(rows):
            writer.writerow(["IBM", day, 100.0 + day])
    return f"quote={path}:name:str,day:int,price:float"


def _spawn(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )


def _read_rows(process: subprocess.Popen, count: int, timeout: float = 30.0):
    """Read ``count`` data lines from a streaming child (after the
    header), failing rather than hanging if the child stalls."""
    deadline = time.monotonic() + timeout
    header = process.stdout.readline()
    assert header, "stream produced no header"
    rows = []
    while len(rows) < count:
        assert time.monotonic() < deadline, (
            f"only {len(rows)}/{count} rows before timeout"
        )
        line = process.stdout.readline()
        assert line, "stream ended before enough rows were read"
        rows.append(line.strip())
    return rows


class TestStreamSigterm:
    def test_sigterm_checkpoints_and_resume_is_disjoint(self, tmp_path):
        spec = _write_quotes(tmp_path / "quotes.csv", 400)
        checkpoint = tmp_path / "stream.ckpt"
        diag_path = tmp_path / "diag.json"

        process = _spawn(
            "stream",
            RISING_SQL,
            "--table",
            spec,
            "--checkpoint",
            str(checkpoint),
            "--checkpoint-every",
            "1",
            "--throttle",
            "0.02",
            "--diagnostics-json",
            str(diag_path),
        )
        first_rows = _read_rows(process, 5)
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=30)

        assert process.returncode == EXIT_LIMIT_HIT, stderr
        assert checkpoint.exists(), "no final checkpoint written"
        diagnostics = json.loads(diag_path.read_text())
        assert any(
            "received SIGTERM" in entry for entry in diagnostics["limits_hit"]
        ), diagnostics["limits_hit"]
        first = first_rows + [
            line.strip()
            for line in stdout.splitlines()
            if line.strip() and "," in line and not line.startswith("(")
        ]

        resumed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "stream",
                RISING_SQL,
                "--table",
                spec,
                "--checkpoint",
                str(checkpoint),
                "--resume",
            ],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=60,
        )
        assert resumed.returncode == 0, resumed.stderr
        resumed_rows = [
            line.strip()
            for line in resumed.stdout.splitlines()[1:]
            if line.strip() and not line.startswith("(")
        ]

        reference = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "stream",
                RISING_SQL,
                "--table",
                spec,
            ],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=60,
        )
        assert reference.returncode == 0, reference.stderr
        expected = [
            line.strip()
            for line in reference.stdout.splitlines()[1:]
            if line.strip() and not line.startswith("(")
        ]

        # Exactly-once across the kill: no overlap, no loss.
        assert not (set(first) & set(resumed_rows))
        assert sorted(first + resumed_rows) == sorted(expected)

    def test_sigint_stream_also_exits_3(self, tmp_path):
        spec = _write_quotes(tmp_path / "quotes.csv", 400)
        diag_path = tmp_path / "diag.json"
        process = _spawn(
            "stream",
            RISING_SQL,
            "--table",
            spec,
            "--throttle",
            "0.02",
            "--diagnostics-json",
            str(diag_path),
        )
        _read_rows(process, 3)
        process.send_signal(signal.SIGINT)
        _, stderr = process.communicate(timeout=30)
        assert process.returncode == EXIT_LIMIT_HIT, stderr
        diagnostics = json.loads(diag_path.read_text())
        assert any(
            "received SIGINT" in entry for entry in diagnostics["limits_hit"]
        )


class TestQuerySigint:
    def test_sigint_mid_query_yields_partial_results_and_exit_3(
        self, tmp_path
    ):
        spec = _write_quotes(tmp_path / "quotes.csv", 120_000)
        diag_path = tmp_path / "diag.json"
        process = _spawn(
            "query",
            SLOW_SQL,
            "--table",
            spec,
            "--matcher",
            "naive",
            "--diagnostics-json",
            str(diag_path),
        )
        time.sleep(2.0)  # past CSV load, well inside the matcher loop
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=30)

        assert process.returncode == EXIT_LIMIT_HIT, stderr
        diagnostics = json.loads(diag_path.read_text())
        assert any(
            "received SIGINT" in entry for entry in diagnostics["limits_hit"]
        ), diagnostics["limits_hit"]
        # Partial results were still printed, with the row-count footer.
        assert "rows)" in stdout
