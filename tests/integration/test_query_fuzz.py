"""Full-stack fuzzing: generated SQL-TS queries, OPS vs naive agreement.

Hypothesis builds random (but well-formed) queries over the quote schema
— random pattern arity, star flags, and per-element conditions drawn from
the paper's condition shapes — renders them to SQL text, and runs them
through parse → analyze → compile → execute under both matchers.  The
same generators also drive the columnar-vs-row differential legs: full
agreement unlimited, under match caps, and (via the CLI) under
mid-query wall-clock deadlines where both paths must take the same
partial-results exit code.
"""

import datetime as dt
import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.catalog import Catalog
from repro.engine.csv_io import save_csv
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.match.base import Instrumentation
from repro.pattern.predicates import AttributeDomains
from repro.resilience import ResourceLimits

DOMAINS = AttributeDomains.prices()
VARS = "ABCDEFG"


def _condition_pool(var, previous_var):
    """SQL condition templates for one pattern variable."""
    pool = [
        f"{var}.price > {var}.previous.price",
        f"{var}.price < {var}.previous.price",
        f"{var}.price < 60",
        f"{var}.price > 40",
        f"{var}.price >= 0.98 * {var}.previous.price",
        f"{var}.price < 0.97 * {var}.previous.price",
        f"({var}.price < 35 OR {var}.price > 65)",
        f"NOT {var}.price > 55",
    ]
    if previous_var is not None:
        pool.append(f"{var}.price > {previous_var}.price")
        pool.append(f"{var}.price < 1.05 * {previous_var}.price")
    return pool


@st.composite
def queries(draw):
    arity = draw(st.integers(1, 4))
    names = list(VARS[:arity])
    stars = [draw(st.booleans()) for _ in names]
    conjuncts = []
    for index, name in enumerate(names):
        previous_var = None
        # A reference to the previous variable is only offset-expressible
        # when neither endpoint is starred; the generator still emits it
        # for starred cases (it becomes a residual, also worth fuzzing).
        if index > 0:
            previous_var = names[index - 1]
        pool = _condition_pool(name, previous_var)
        picks = draw(st.lists(st.sampled_from(pool), min_size=0, max_size=2))
        conjuncts.extend(picks)
    if not conjuncts:
        conjuncts = [f"{names[0]}.price > 0"]
    pattern = ", ".join(
        ("*" if star else "") + name for name, star in zip(names, stars)
    )
    return (
        f"SELECT {names[0]}.date FROM quote CLUSTER BY name SEQUENCE BY date "
        f"AS ({pattern}) WHERE " + " AND ".join(conjuncts)
    )


@st.composite
def price_tables(draw):
    table = Table("quote", [("name", "str"), ("date", "date"), ("price", "float")])
    base = dt.date(2000, 1, 3)
    for ticker in ("AAA", "BBB"):
        steps = draw(
            st.lists(
                st.sampled_from([-8.0, -3.0, -1.0, 1.0, 3.0, 8.0]),
                min_size=0,
                max_size=40,
            )
        )
        value = 50.0
        for offset, step in enumerate(steps):
            value = max(10.0, min(90.0, value + step))
            table.insert(
                {
                    "name": ticker,
                    "date": base + dt.timedelta(days=offset),
                    "price": value,
                }
            )
    return Catalog([table])


@settings(max_examples=150, deadline=None)
@given(queries(), price_tables())
def test_generated_queries_agree_across_matchers(sql, catalog):
    ops = Executor(catalog, domains=DOMAINS, matcher="ops").execute(sql)
    naive = Executor(catalog, domains=DOMAINS, matcher="naive").execute(sql)
    assert ops == naive


def test_residual_on_leading_star_binding_regression():
    """Fuzz-found: with a leading star and a residual that references its
    binding (``B.price > A.price`` resolves ``A`` to the run's first
    row), the element-granular shift must not skip restart positions
    interior to the star run — a shorter run re-binds ``A`` and can flip
    the residual's verdict.  On [60, 50, 40, 50] the only match starts
    one position *inside* the first attempt's A-run."""
    sql = (
        "SELECT A.date FROM quote CLUSTER BY name SEQUENCE BY date "
        "AS (*A, B) WHERE A.price < A.previous.price AND B.price > A.price"
    )
    table = Table("quote", [("name", "str"), ("date", "date"), ("price", "float")])
    base = dt.date(2000, 1, 3)
    for offset, price in enumerate([60.0, 50.0, 40.0, 50.0]):
        table.insert(
            {"name": "AAA", "date": base + dt.timedelta(days=offset), "price": price}
        )
    catalog = Catalog([table])
    ops = Executor(catalog, domains=DOMAINS, matcher="ops").execute(sql)
    naive = Executor(catalog, domains=DOMAINS, matcher="naive").execute(sql)
    assert ops == naive
    assert ops.rows == ((dt.date(2000, 1, 5),),)


@settings(max_examples=80, deadline=None)
@given(queries(), price_tables())
def test_generated_queries_columnar_matches_row(sql, catalog):
    """The vectorized path is a pure optimization: same Result, always."""
    row = Executor(catalog, domains=DOMAINS, evaluator="row").execute(sql)
    columnar = Executor(catalog, domains=DOMAINS, evaluator="columnar").execute(sql)
    assert columnar == row


@settings(max_examples=40, deadline=None)
@given(queries(), price_tables(), st.integers(1, 3))
def test_columnar_respects_match_caps_like_row(sql, catalog, cap):
    """Under a max_matches cap both paths stop at the same point: same
    kept rows, same counted work, same limits_hit diagnostics."""
    reports = {}
    for evaluator in ("row", "columnar"):
        executor = Executor(
            catalog,
            domains=DOMAINS,
            evaluator=evaluator,
            limits=ResourceLimits(max_matches=cap),
        )
        result, report = executor.execute_with_report(sql, Instrumentation())
        reports[evaluator] = (
            result,
            report.matches,
            report.predicate_tests,
            tuple(report.diagnostics.limits_hit),
        )
    assert reports["columnar"] == reports["row"]


def _oscillating_csv(tmp_path, rows=2500):
    table = Table("quote", [("name", "str"), ("date", "date"), ("price", "float")])
    base = dt.date(2000, 1, 3)
    for offset in range(rows):
        table.insert(
            {
                "name": "AAA",
                "date": base + dt.timedelta(days=offset),
                "price": 50.0 + (1.0 if offset % 2 else -1.0),
            }
        )
    path = str(tmp_path / "quote.csv")
    save_csv(table, path)
    return f"quote={path}:name:str,date:date,price:float"


def test_mid_query_deadline_exit_code_parity(tmp_path):
    """An already-expired deadline yields partial results and exit code 3
    on both evaluator paths — the columnar path must honour the same
    cooperative cancellation points."""
    from repro.cli import EXIT_LIMIT_HIT, main

    spec = _oscillating_csv(tmp_path)
    sql = (
        "SELECT A.date FROM quote CLUSTER BY name SEQUENCE BY date "
        "AS (*A, *B) WHERE A.price < A.previous.price "
        "AND B.price > B.previous.price"
    )
    for evaluator in ("row", "columnar"):
        code = main(
            [
                "query",
                sql,
                "--table",
                spec,
                "--matcher",
                "naive",
                "--timeout",
                "1e-9",
                "--evaluator",
                evaluator,
            ],
            out=io.StringIO(),
        )
        assert code == EXIT_LIMIT_HIT, evaluator


def test_match_cap_exit_code_and_output_parity(tmp_path):
    """A deterministic cap: both evaluator paths print identical partial
    results and exit with code 3."""
    from repro.cli import EXIT_LIMIT_HIT, main

    spec = _oscillating_csv(tmp_path, rows=60)
    sql = (
        "SELECT A.date FROM quote CLUSTER BY name SEQUENCE BY date "
        "AS (A, B) WHERE A.price < A.previous.price AND B.price > 40"
    )
    outputs = {}
    for evaluator in ("row", "columnar"):
        out = io.StringIO()
        code = main(
            ["query", sql, "--table", spec, "--max-matches", "2",
             "--evaluator", evaluator],
            out=out,
        )
        assert code == EXIT_LIMIT_HIT, evaluator
        outputs[evaluator] = out.getvalue()
    assert outputs["columnar"] == outputs["row"]


@settings(max_examples=100, deadline=None)
@given(queries())
def test_generated_queries_compile(sql):
    """Every generated query must parse, analyze, and plan."""
    catalog = Catalog([Table("quote", [("name", "str"), ("date", "date"), ("price", "float")])])
    analyzed, compiled = Executor(catalog, domains=DOMAINS).prepare(sql)
    for j in range(1, compiled.m + 1):
        assert 1 <= compiled.shift(j) <= j
        if compiled.shift(j) == j:
            assert compiled.next(j) == 0
        else:
            assert 1 <= compiled.next(j) <= j - compiled.shift(j) + 1
