"""Full-stack integration: every paper query through parse→analyze→OPS→SQL.

These are the headline guarantees of the reproduction:

- every example query from the paper parses, analyzes, compiles, and runs;
- naive, backtracking, and OPS matchers return identical relations on all
  of them (speedups never change answers);
- the relaxed double-bottom query (Example 10) on the synthetic DJIA
  finds a small number of matches comparable to the paper's 12, with OPS
  doing strictly fewer predicate tests than naive.
"""

import pytest

from repro.bench.harness import compare_matchers
from repro.data import workloads
from repro.engine.executor import Executor
from repro.match.base import Instrumentation
from repro.pattern.predicates import AttributeDomains

DOMAINS = AttributeDomains.prices()


class TestAllExamplesRun:
    @pytest.mark.parametrize("name", sorted(workloads.ALL_EXAMPLES))
    def test_runs_and_matchers_agree(self, paper_catalog, name):
        runs = compare_matchers(
            paper_catalog,
            workloads.ALL_EXAMPLES[name],
            matchers=("naive", "ops"),
            domains=DOMAINS,
        )
        assert runs["ops"].matches == runs["naive"].matches
        assert runs["ops"].predicate_tests <= runs["naive"].predicate_tests

    @pytest.mark.parametrize(
        "name", ["example_2", "example_8", "example_9", "example_10"]
    )
    def test_backtracking_agrees_on_exclusive_star_queries(self, paper_catalog, name):
        compare_matchers(
            paper_catalog,
            workloads.ALL_EXAMPLES[name],
            matchers=("naive", "backtracking", "ops"),
            domains=DOMAINS,
        )


class TestDoubleBottomHeadline:
    def test_match_count_near_paper(self, paper_catalog):
        """Paper: 12 matches in 25 years of DJIA; synthetic data must land
        in the same small-double-digit regime."""
        executor = Executor(paper_catalog, domains=DOMAINS)
        result = executor.execute(workloads.EXAMPLE_10)
        assert 5 <= len(result) <= 25

    def test_output_columns(self, paper_catalog):
        executor = Executor(paper_catalog, domains=DOMAINS)
        result = executor.execute(workloads.EXAMPLE_10)
        assert result.columns == (
            "X.next.date",
            "X.next.price",
            "S.previous.date",
            "S.previous.price",
        )
        for row in result:
            assert row[0] < row[2]  # pattern start precedes pattern end

    def test_ops_speedup_over_naive(self, paper_catalog):
        runs = compare_matchers(
            paper_catalog,
            workloads.EXAMPLE_10,
            matchers=("naive", "ops"),
            domains=DOMAINS,
        )
        assert runs["ops"].speedup_over(runs["naive"]) > 1.3

    def test_ops_close_to_one_test_per_tuple(self, paper_catalog):
        inst = Instrumentation()
        executor = Executor(paper_catalog, domains=DOMAINS)
        _, report = executor.execute_with_report(workloads.EXAMPLE_10, inst)
        assert inst.tests < 1.8 * report.rows_scanned


class TestExample8Periods:
    def test_periods_tile_the_series(self, paper_catalog):
        """(*rise, *fall, *rise) matches must be plentiful and ordered."""
        executor = Executor(paper_catalog, domains=DOMAINS)
        result = executor.execute(workloads.EXAMPLE_8)
        assert len(result) > 10
        for row in result:
            name, start, end = row
            assert start < end


class TestSemanticsDetails:
    def test_example2_requires_halving(self, paper_catalog):
        """Example 2's residual (Z.previous.price < 0.5 * X.price) is a
        hard constraint: random-walk stocks rarely halve in one run, so
        the result is small but the query must run."""
        executor = Executor(paper_catalog, domains=DOMAINS)
        result = executor.execute(workloads.EXAMPLE_2)
        for row in result:
            _, start, end = row
            assert start <= end

    def test_example3_no_exact_integer_prices(self, paper_catalog):
        """Float random walks essentially never hit 10/11/15 exactly."""
        executor = Executor(paper_catalog, domains=DOMAINS)
        assert len(executor.execute(workloads.EXAMPLE_3)) == 0


class TestSeedRobustness:
    """The double-bottom count must be stable across data seeds — the
    calibration is a property of the generator, not of one lucky seed."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_match_count_regime_across_seeds(self, seed):
        from repro.data.djia import djia_table
        from repro.engine.catalog import Catalog

        catalog = Catalog([djia_table(seed=seed)])
        executor = Executor(catalog, domains=DOMAINS)
        result = executor.execute(workloads.EXAMPLE_10)
        assert 3 <= len(result) <= 40, f"seed {seed}: {len(result)} matches"

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_speedup_holds_across_seeds(self, seed):
        from repro.data.djia import djia_table
        from repro.engine.catalog import Catalog

        catalog = Catalog([djia_table(seed=seed)])
        runs = compare_matchers(
            catalog, workloads.EXAMPLE_10, matchers=("naive", "ops"), domains=DOMAINS
        )
        assert runs["ops"].speedup_over(runs["naive"]) > 1.3
