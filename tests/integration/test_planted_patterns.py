"""Planted-occurrence faithfulness tests.

Each test constructs a price series containing a known occurrence of a
paper query's pattern and asserts the executor reports exactly it —
positions, navigation outputs, and FIRST/LAST endpoints.  Matchers are
cross-checked throughout.
"""

import datetime as dt

import pytest

from repro.data.workloads import EXAMPLE_2, EXAMPLE_8, EXAMPLE_9, EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.pattern.predicates import AttributeDomains

DOMAINS = AttributeDomains.prices()
BASE = dt.date(1999, 1, 4)


def quote_catalog(prices, name="IBM", table_name="quote"):
    table = Table(
        table_name, [("name", "str"), ("date", "date"), ("price", "float")]
    )
    for offset, price in enumerate(prices):
        table.insert(
            {"name": name, "date": BASE + dt.timedelta(days=offset), "price": float(price)}
        )
    return Catalog([table])


def day(offset):
    return BASE + dt.timedelta(days=offset)


def run(catalog, sql, matcher="ops"):
    return Executor(catalog, domains=DOMAINS, matcher=matcher).execute(sql)


def run_both(catalog, sql):
    ops = run(catalog, sql, "ops")
    naive = run(catalog, sql, "naive")
    assert ops == naive
    return ops


class TestExample2Planted:
    """Maximal falling period losing more than half the value."""

    #            0    1   2   3   4   5   6
    PRICES = [100, 105, 90, 70, 50, 40, 45]

    def test_exact_period(self):
        catalog = quote_catalog(self.PRICES)
        result = run_both(catalog, EXAMPLE_2)
        # X = day 1 (105), *Y = days 2..5 (falling to 40 < 52.5),
        # Z = day 6 (45, no longer falling); Z.previous = day 5.
        assert result.rows == (("IBM", day(1), day(5)),)

    def test_no_match_when_drop_too_shallow(self):
        catalog = quote_catalog([100, 105, 90, 70, 60, 65])
        assert len(run_both(catalog, EXAMPLE_2)) == 0


class TestExample8Planted:
    """Rise, fall, rise — FIRST/LAST endpoints."""

    #            0   1   2   3   4   5   6   7
    PRICES = [10, 12, 14, 13, 11, 12, 15, 16]

    def test_endpoints(self):
        catalog = quote_catalog(self.PRICES)
        result = run_both(catalog, EXAMPLE_8)
        name, sdate, edate = result.rows[0]
        assert name == "IBM"
        assert sdate == day(1)  # FIRST(X): first rising tuple
        assert edate == day(7)  # LAST(Z): last rising tuple

    def test_monotone_input_has_no_match(self):
        catalog = quote_catalog([1, 2, 3, 4, 5, 6])
        assert len(run_both(catalog, EXAMPLE_8)) == 0


class TestExample9Planted:
    """The four-period 30-40 pattern, exactly as the query describes:
    (i) rising prices into the 30-40 range, (ii) a fall, (iii) a rise
    into 35-40, (iv) a fall below 30."""

    # Greedy stars end on the first tuple that fails their condition, and
    # that tuple is then claimed by the next element — so Y and U are the
    # (non-rising) tuples that terminate the *X and *T runs, and S is the
    # (non-falling) tuple that terminates *V after it dipped below 30.
    PRICES = [
        30,                 # 0:  anchor (a rise needs a previous tuple)
        32, 34, 36,         # 1-3:  *X rising
        34,                 # 4:    Y — ends the rise, inside (30, 40)
        32, 31,             # 5-6:  *Z falling
        33, 36,             # 7-8:  *T rising
        35.5,               # 9:    U — ends the rise, inside (35, 40)
        33, 28,             # 10-11: *V falling below 30
        28.5,               # 12:   S — ends the fall, below 30
        29,                 # 13:   tail
    ]

    def test_occurrence_found(self):
        catalog = quote_catalog(self.PRICES)
        result = run_both(catalog, EXAMPLE_9)
        assert len(result) == 1
        next_date, next_price, prev_date, prev_price = result.rows[0]
        # X.next: the tuple after X's first tuple.
        assert next_price == 34.0 and next_date == day(2)
        # S.previous: the last *V tuple.
        assert prev_price == 28.0 and prev_date == day(11)

    def test_wrong_band_kills_match(self):
        prices = list(self.PRICES)
        prices[9] = 42  # U outside (35, 40)
        catalog = quote_catalog(prices)
        assert len(run_both(catalog, EXAMPLE_9)) == 0

    def test_cluster_filter_excludes_other_names(self):
        catalog = quote_catalog(self.PRICES, name="INTC")
        assert len(run_both(catalog, EXAMPLE_9)) == 0


class TestExample10Planted:
    """A hand-built relaxed double bottom: drop, flat, rise, flat, drop,
    flat, rise — all moves either >2% or within the 2% band."""

    PRICES = [
        100.0,           # 0: X (not a >2% drop vs previous — first tuple n/a)
        100.5,           # 1: X anchor (within band of 100)
        97.0,            # 2: *Y drop (-3.5%)
        96.5, 96.0,      # 3-4: *Z flat (within 2%)
        99.0,            # 5: *T rise (+3.1%)
        99.5, 99.0,      # 6-7: *U flat
        95.0,            # 8: *V drop (-4.0%)
        94.5, 95.5,      # 9-10: *W flat
        98.5,            # 11: *R rise (+3.1%)
        99.0,            # 12: S (within band)
    ]

    def test_double_bottom_found(self):
        catalog = quote_catalog(self.PRICES, table_name="djia")
        result = run_both(catalog, EXAMPLE_10)
        assert len(result) == 1
        next_date, next_price, prev_date, prev_price = result.rows[0]
        assert next_date == day(2) and next_price == 97.0
        assert prev_date == day(11) and prev_price == 98.5

    def test_single_bottom_is_not_enough(self):
        catalog = quote_catalog(self.PRICES[:8], table_name="djia")
        assert len(run_both(catalog, EXAMPLE_10)) == 0
