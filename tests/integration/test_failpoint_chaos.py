"""Failpoint-driven chaos matrix for the failure-domain hardening PR.

Each fault class gets a deterministic injection (no kill -9 roulette)
and the same acceptance bar: the *healthy* observer's results must be
byte-identical to an undisturbed run.  CI runs these one class at a
time (``-k torn_write`` etc.) so a regression names its fault class:

- ``torn_write``          — a checkpoint frame truncated mid-write;
- ``fsync_loss``          — the checkpoint fsync silently skipped;
- ``frame_drop``          — a server→client frame dies on the wire;
- ``replica_corruption``  — a checkpoint replica corrupted/wiped on disk.

``TestChaosStorm`` is the PR's headline gate: all of the above at once
plus a forced server restart, with the replica-repair and request-dedup
counters visible through the ``metrics`` op afterwards.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro import failpoints
from repro.engine.catalog import Catalog
from repro.pattern.predicates import AttributeDomains
from repro.recovery import ReplicatedCheckpointStore
from repro.serve import (
    FailoverPolicy,
    QueryServer,
    ServeClient,
    ServerThread,
)

from tests.serve.conftest import RISING_QUERY, price_table


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


@pytest.fixture
def catalog() -> Catalog:
    return Catalog([price_table(rows=90)])


#: Real-time failover patient enough to outlast a server restart.
PATIENT = FailoverPolicy(max_retries=20, backoff=0.05, max_backoff=0.5)


def _metric_value(metrics_text: str, name: str) -> float:
    """Sum every sample of a counter, across label sets."""
    total = 0.0
    for line in metrics_text.splitlines():
        if line.startswith(name):
            total += float(line.rsplit(" ", 1)[1])
    return total


def make_server(catalog, checkpoint_dir, **kwargs) -> ServerThread:
    return ServerThread(
        QueryServer(
            catalog,
            domains=AttributeDomains.prices(),
            checkpoint_dir=checkpoint_dir,
            subscription_checkpoint_every=1,
            **kwargs,
        )
    ).start()


def reference_rows(catalog, tmp_path) -> list:
    """The undisturbed subscription output every fault run must match."""
    handle = make_server(catalog, str(tmp_path / "reference_ckpt"))
    try:
        with ServeClient(*handle.address) as client:
            return [
                (row.seq, row.values)
                for row in client.subscribe(RISING_QUERY, "reference")
            ]
    finally:
        handle.stop(grace=2.0)


def run_subscription_with_restart(
    catalog, checkpoint_dir, *, restart_after=2, between_sessions=None, **server_kwargs
):
    """Consume a subscription, force-restart the server mid-stream, let
    client failover finish the job.  Returns (delivered, final_handle,
    client) — caller closes both."""
    handle = make_server(catalog, checkpoint_dir, **server_kwargs)
    host, port = handle.address
    state = {"handle": handle}
    delivered: list = []
    client = ServeClient(host, port, failover=PATIENT)
    for row in client.subscribe(RISING_QUERY, "durable"):
        delivered.append((row.seq, row.values))
        if len(delivered) == restart_after:
            state["handle"].force_stop()
            if between_sessions is not None:
                between_sessions()
            state["handle"] = make_server(
                catalog, checkpoint_dir, port=port, **server_kwargs
            )
    return delivered, state["handle"], client


class TestTornWrite:
    def test_torn_write_of_checkpoint_replica_is_survived(
        self, catalog, tmp_path
    ):
        expected = reference_rows(catalog, tmp_path)
        # The 2nd replica write of the first replicated save is torn.
        failpoints.activate_spec("checkpoint.write=torn@2*1")
        delivered, handle, client = run_subscription_with_restart(
            catalog, str(tmp_path / "ckpt"), checkpoint_replicas=3
        )
        try:
            assert failpoints.fires("checkpoint.write") == 1
            seqs = [seq for seq, _ in delivered]
            assert len(seqs) == len(set(seqs)), "duplicate delivery"
            assert delivered == expected
        finally:
            client.close()
            handle.stop(grace=2.0)


class TestFsyncLoss:
    def test_fsync_loss_without_a_crash_changes_nothing(
        self, catalog, tmp_path
    ):
        expected = reference_rows(catalog, tmp_path)
        failpoints.activate_spec("checkpoint.fsync=skip")
        handle = make_server(catalog, str(tmp_path / "ckpt"))
        try:
            with ServeClient(*handle.address) as client:
                delivered = [
                    (row.seq, row.values)
                    for row in client.subscribe(RISING_QUERY, "durable")
                ]
            assert failpoints.fires("checkpoint.fsync") > 0
            assert delivered == expected
        finally:
            handle.stop(grace=2.0)


class TestFrameDrop:
    def test_frame_drop_mid_subscription_resumes_exactly_once(
        self, catalog, tmp_path
    ):
        expected = reference_rows(catalog, tmp_path)
        # begin + two rows arrive, then the 4th frame dies on the wire.
        failpoints.activate_spec("serve.send_frame=raise:BrokenPipeError@4*1")
        handle = make_server(catalog, str(tmp_path / "ckpt"))
        try:
            with ServeClient(*handle.address, failover=PATIENT) as client:
                delivered = [
                    (row.seq, row.values)
                    for row in client.subscribe(RISING_QUERY, "durable")
                ]
                assert client.reconnects >= 1
            seqs = [seq for seq, _ in delivered]
            assert len(seqs) == len(set(seqs)), "duplicate delivery"
            assert delivered == expected
        finally:
            handle.stop(grace=2.0)


class TestReplicaCorruption:
    def test_replica_corruption_is_repaired_on_reload(self, catalog, tmp_path):
        expected = reference_rows(catalog, tmp_path)
        checkpoint_dir = str(tmp_path / "ckpt")

        def corrupt_one_replica():
            # Flip the tail byte of every checkpoint in replica1: its
            # checksums no longer verify, so quorum reads must outvote
            # and repair it.
            replica_dir = os.path.join(checkpoint_dir, "replica1")
            for name in os.listdir(replica_dir):
                path = os.path.join(replica_dir, name)
                with open(path, "r+b") as handle:
                    handle.seek(-1, os.SEEK_END)
                    last = handle.read(1)
                    handle.seek(-1, os.SEEK_END)
                    handle.write(bytes([last[0] ^ 0xFF]))

        delivered, handle, client = run_subscription_with_restart(
            catalog,
            checkpoint_dir,
            checkpoint_replicas=3,
            between_sessions=corrupt_one_replica,
        )
        try:
            seqs = [seq for seq, _ in delivered]
            assert len(seqs) == len(set(seqs)), "duplicate delivery"
            assert delivered == expected
            # The repair shows up in the restarted server's registry.
            metrics = client.metrics()
            assert _metric_value(
                metrics, "repro_checkpoint_replica_repairs_total"
            ) >= 1
        finally:
            client.close()
            handle.stop(grace=2.0)


class TestChaosStorm:
    def test_storm_torn_write_wiped_replica_forced_restart(
        self, catalog, tmp_path
    ):
        """The PR's acceptance gate, end to end: a torn checkpoint
        write, a whole replica directory wiped, and a forced server
        restart mid-stream — the subscriber's output is byte-identical
        to the undisturbed run, exactly-once, and the repair/dedup
        counters are visible through the metrics op."""
        expected = reference_rows(catalog, tmp_path)
        checkpoint_dir = str(tmp_path / "ckpt")
        failpoints.activate_spec("checkpoint.write=torn@2*1")

        def wipe_replica():
            shutil.rmtree(os.path.join(checkpoint_dir, "replica2"))

        delivered, handle, client = run_subscription_with_restart(
            catalog,
            checkpoint_dir,
            checkpoint_replicas=3,
            between_sessions=wipe_replica,
        )
        try:
            # Byte-identical, exactly-once.
            seqs = [seq for seq, _ in delivered]
            assert len(seqs) == len(set(seqs)), "duplicate delivery"
            assert delivered == expected
            assert client.reconnects >= 1

            # Now lose the query-response frame too: the retry must be
            # answered from the request ledger, not re-executed.
            failpoints.activate_spec(
                "serve.send_frame=raise:ConnectionResetError*1"
            )
            reply = client.query(RISING_QUERY)
            assert reply.deduplicated is True
            assert reply.rows == [values for _, values in expected]

            metrics = client.metrics()
            assert _metric_value(
                metrics, "repro_checkpoint_replica_repairs_total"
            ) >= 1
            assert (
                'repro_serve_request_dedup_total{tenant="default"} 1'
                in metrics
            )
        finally:
            client.close()
            handle.stop(grace=2.0)


class TestFailpointsOff:
    def test_disarmed_registry_is_byte_identical(self, catalog, tmp_path):
        """Arming and clearing every site must leave zero trace: the
        off-path is one boolean check, not a changed code path."""
        baseline = reference_rows(catalog, tmp_path)

        failpoints.activate_spec(
            "checkpoint.write=torn;checkpoint.fsync=skip;"
            "checkpoint.rename=raise;serve.send_frame=raise;"
            "recovery.restore=raise;parallel.worker_start=raise"
        )
        failpoints.reset()
        assert failpoints.armed() is False

        handle = make_server(
            catalog, str(tmp_path / "off_ckpt"), checkpoint_replicas=3
        )
        try:
            with ServeClient(*handle.address) as client:
                delivered = [
                    (row.seq, row.values)
                    for row in client.subscribe(RISING_QUERY, "durable")
                ]
                query_rows = client.query(RISING_QUERY).rows
        finally:
            handle.stop(grace=2.0)
        assert delivered == baseline
        assert query_rows == [values for _, values in baseline]

    def test_replicated_store_with_failpoints_off_round_trips(self, tmp_path):
        store = ReplicatedCheckpointStore(
            [str(tmp_path / f"r{i}" / "ck") for i in range(3)]
        )
        store.save({"offset": 1})
        assert store.load() == {"offset": 1}
        assert store.repairs == 0
        assert store.write_failures == 0
