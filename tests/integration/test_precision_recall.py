"""Precision/recall of the double-bottom query on planted ground truth.

The Example 10 query must find exactly the planted occurrences — no
misses (recall 1.0), no spurious hits on in-band noise (precision 1.0) —
under every matcher.
"""

import datetime as dt

import pytest

from repro.data.planted import TEMPLATE_LENGTH, plant_double_bottoms
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.pattern.predicates import AttributeDomains

DOMAINS = AttributeDomains.prices()
BASE = dt.date(1990, 1, 1)


def djia_catalog(prices):
    table = Table("djia", [("date", "date"), ("price", "float")])
    for offset, price in enumerate(prices):
        table.insert({"date": BASE + dt.timedelta(days=offset), "price": price})
    return Catalog([table])


def found_anchor_offsets(result):
    """X.NEXT is the first *Y tuple = anchor + 1; recover anchor offsets."""
    return sorted((row[0] - BASE).days - 1 for row in result)


class TestGroundTruth:
    POSITIONS = [50, 200, 390, 700]

    @pytest.fixture(scope="class")
    def catalog(self):
        prices, _ = plant_double_bottoms(1000, self.POSITIONS, seed=3)
        return djia_catalog(prices)

    @pytest.mark.parametrize("matcher", ["naive", "backtracking", "ops"])
    def test_exact_recovery(self, catalog, matcher):
        result = Executor(catalog, domains=DOMAINS, matcher=matcher).execute(
            EXAMPLE_10
        )
        assert found_anchor_offsets(result) == self.POSITIONS

    def test_noise_only_series_has_no_hits(self):
        prices, _ = plant_double_bottoms(1000, [], seed=4)
        result = Executor(djia_catalog(prices), domains=DOMAINS).execute(EXAMPLE_10)
        assert len(result) == 0

    def test_dense_plants(self):
        positions = list(range(20, 960, TEMPLATE_LENGTH + 5))
        prices, _ = plant_double_bottoms(1000, positions, seed=5)
        result = Executor(djia_catalog(prices), domains=DOMAINS).execute(EXAMPLE_10)
        assert found_anchor_offsets(result) == positions


class TestGeneratorValidation:
    def test_overlapping_positions_rejected(self):
        with pytest.raises(ValueError):
            plant_double_bottoms(200, [10, 12])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            plant_double_bottoms(20, [15])
        with pytest.raises(ValueError):
            plant_double_bottoms(100, [0])

    def test_excess_noise_rejected(self):
        with pytest.raises(ValueError):
            plant_double_bottoms(100, [], noise=0.03)

    def test_noise_stays_in_band(self):
        prices, _ = plant_double_bottoms(2000, [], seed=6)
        for previous, current in zip(prices, prices[1:]):
            assert abs(current / previous - 1.0) < 0.02

    def test_deterministic(self):
        assert plant_double_bottoms(300, [30], seed=7) == plant_double_bottoms(
            300, [30], seed=7
        )
