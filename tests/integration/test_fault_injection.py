"""Fault injection: corrupted inputs and runaway queries, end to end.

Feeds deliberately broken CSV files and scripts through the full
``Session`` path under each :class:`~repro.resilience.ErrorPolicy`, and
checks the acceptance bound for resource limits: a million-row query
with a 0.5 s deadline must come back within 2x the deadline carrying
partial matches and a limit diagnostic.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.data.random_walk import geometric_walk
from repro.engine.csv_io import load_csv
from repro.engine.session import Session
from repro.engine.table import Schema
from repro.errors import SchemaError, StatementError
from repro.match.ops_star import OpsStarMatcher
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.dsl import falls, rises
from repro.pattern.spec import PatternElement, PatternSpec
from repro.resilience import Budget, Diagnostics, ErrorPolicy, ResourceLimits
from tests.conftest import price_predicate

QUOTE_SCHEMA = Schema([("name", "str"), ("date", "date"), ("price", "float")])

#: Header + 8 data rows; physical lines 4, 6, 7, 8 are corrupt.
DIRTY_CSV = """\
name,date,price
IBM,1999-01-01,100.0
IBM,1999-01-02,101.5
IBM,1999-13-99,102.0
IBM,1999-01-04,103.0
IBM,1999-01-05,nan
IBM,1999-01-06
IBM,1999-01-07,104.0,EXTRA
IBM,1999-01-08,99.0
"""

#: Rows that survive a lenient load of DIRTY_CSV.
CLEAN_PRICES = [100.0, 101.5, 103.0, 99.0]


def write_csv(tmp_path, text, name="dirty.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestDirtyCsvRaise:
    def test_aborts_with_context(self, tmp_path):
        path = write_csv(tmp_path, DIRTY_CSV)
        with pytest.raises(SchemaError) as excinfo:
            load_csv(path, "quote", QUOTE_SCHEMA)
        message = str(excinfo.value)
        assert f"{path}:4" in message  # first bad physical line
        assert "column 'date'" in message
        assert "'1999-13-99'" in message

    def test_truncated_row_context(self, tmp_path):
        path = write_csv(
            tmp_path, "name,date,price\nIBM,1999-01-01,100.0\nIBM,1999-01-02\n"
        )
        with pytest.raises(SchemaError, match="truncated row.*'price'"):
            load_csv(path, "quote", QUOTE_SCHEMA)

    def test_extra_cells_context(self, tmp_path):
        path = write_csv(
            tmp_path, "name,date,price\nIBM,1999-01-01,100.0,oops\n"
        )
        with pytest.raises(SchemaError, match="extra column"):
            load_csv(path, "quote", QUOTE_SCHEMA)

    def test_nan_is_permitted_under_strict(self, tmp_path):
        # The seed parsed 'nan' without complaint; RAISE must not change that.
        path = write_csv(tmp_path, "name,date,price\nIBM,1999-01-01,nan\n")
        table = load_csv(path, "quote", QUOTE_SCHEMA)
        [row] = list(table)
        assert math.isnan(row["price"])

    def test_missing_header_column_always_raises(self, tmp_path):
        path = write_csv(tmp_path, "name,date\nIBM,1999-01-01\n")
        for policy in ErrorPolicy:
            with pytest.raises(SchemaError, match="missing columns"):
                load_csv(path, "quote", QUOTE_SCHEMA, policy=policy)


class TestDirtyCsvLenient:
    @pytest.mark.parametrize("policy", ["skip", "collect"])
    def test_quarantines_and_continues(self, tmp_path, policy):
        path = write_csv(tmp_path, DIRTY_CSV)
        diagnostics = Diagnostics()
        table = load_csv(
            path, "quote", QUOTE_SCHEMA, policy=policy, diagnostics=diagnostics
        )
        assert [row["price"] for row in table] == CLEAN_PRICES
        assert [row.line for row in diagnostics.quarantined] == [4, 6, 7, 8]
        assert all(row.source == str(path) for row in diagnostics.quarantined)
        reasons = " | ".join(row.reason for row in diagnostics.quarantined)
        assert "cannot parse '1999-13-99'" in reasons
        assert "non-finite value 'nan'" in reasons
        assert "truncated row" in reasons
        assert "extra column" in reasons

    def test_collect_retains_error_objects(self, tmp_path):
        path = write_csv(tmp_path, DIRTY_CSV)
        diagnostics = Diagnostics()
        load_csv(
            path, "quote", QUOTE_SCHEMA, policy="collect", diagnostics=diagnostics
        )
        assert len(diagnostics.errors) == 4
        assert all(
            isinstance(failure.error, SchemaError)
            for failure in diagnostics.errors
        )

    def test_skip_does_not_retain_error_objects(self, tmp_path):
        path = write_csv(tmp_path, DIRTY_CSV)
        diagnostics = Diagnostics()
        load_csv(
            path, "quote", QUOTE_SCHEMA, policy="skip", diagnostics=diagnostics
        )
        assert diagnostics.errors == []


FALL_QUERY = (
    "SELECT X.date FROM quote CLUSTER BY name SEQUENCE BY date "
    "AS (X, Y) WHERE Y.price < X.price"
)


class TestSessionFullPath:
    def test_dirty_load_then_query(self, tmp_path):
        path = write_csv(tmp_path, DIRTY_CSV)
        session = Session(policy="skip")
        session.load_csv(path, "quote", QUOTE_SCHEMA)
        result = session.execute(FALL_QUERY)
        # CLEAN_PRICES fall once: 103.0 -> 99.0 (the surviving rows).
        assert len(result) == 1
        assert len(session.diagnostics.quarantined) == 4

    def test_shuffled_sequence_keys_warn(self, tmp_path):
        shuffled = (
            "name,date,price\n"
            "IBM,1999-01-03,99.0\n"
            "IBM,1999-01-01,103.0\n"
            "IBM,1999-01-02,101.0\n"
        )
        path = write_csv(tmp_path, shuffled, name="shuffled.csv")
        session = Session(policy="collect")
        session.load_csv(path, "quote", QUOTE_SCHEMA)
        result = session.execute(FALL_QUERY)
        # Re-sorted by date the walk is 103 -> 101 -> 99; non-overlapping
        # matching pairs up the first fall.
        assert len(result) == 1
        assert any(
            "out of order" in warning
            for warning in session.diagnostics.warnings
        )

    def test_strict_session_load_raises(self, tmp_path):
        path = write_csv(tmp_path, DIRTY_CSV)
        session = Session()
        with pytest.raises(SchemaError):
            session.load_csv(path, "quote", QUOTE_SCHEMA)


GOOD_SCRIPT = """
CREATE TABLE t (name Varchar(8), day Int, price Real);
INSERT INTO t VALUES ('A', 1, 10.0), ('A', 2, 9.0);
SELECT X.day FROM t CLUSTER BY name SEQUENCE BY day
  AS (X, Y) WHERE Y.price < X.price;
"""

BROKEN_SCRIPT = """
CREATE TABLE t (name Varchar(8), day Int, price Real);
INSERT INTO t VALUES ('A', 1, 10.0), ('A', 2, 9.0);
SELECT nonsense syntax here;
SELECT X.day FROM t CLUSTER BY name SEQUENCE BY day
  AS (X, Y) WHERE Y.price < X.price;
"""


class TestScriptStatementErrors:
    def test_statement_error_carries_index_and_snippet(self):
        session = Session()
        with pytest.raises(StatementError) as excinfo:
            session.run_script(BROKEN_SCRIPT)
        error = excinfo.value
        assert error.index == 3
        assert error.snippet.startswith("SELECT nonsense")
        assert len(error.snippet) <= 80
        assert "statement #3" in str(error)

    def test_continue_on_error_collects_and_proceeds(self):
        session = Session(policy="collect")
        results = session.run_script(BROKEN_SCRIPT)
        # The final SELECT still ran and found the one fall.
        assert len(results) == 1
        assert len(results[0]) == 1
        [failure] = session.diagnostics.errors
        assert failure.index == 3
        assert failure.snippet.startswith("SELECT nonsense")

    def test_explicit_continue_under_strict_policy(self):
        session = Session()
        results = session.run_script(BROKEN_SCRIPT, continue_on_error=True)
        assert len(results) == 1
        assert len(session.diagnostics.errors) == 1

    def test_clean_script_unaffected(self):
        session = Session()
        results = session.run_script(GOOD_SCRIPT)
        assert len(results) == 1
        assert session.diagnostics.ok


@pytest.fixture(scope="module")
def million_rows():
    return [{"price": p} for p in geometric_walk(1_000_000, seed=11)]


@pytest.fixture(scope="module")
def star_pattern():
    return compile_pattern(
        PatternSpec(
            [
                PatternElement("X", price_predicate(rises())),
                PatternElement("Y", price_predicate(falls()), star=True),
                PatternElement("Z", price_predicate(rises())),
            ]
        )
    )


DEADLINE = 0.5


class TestDeadlineAcceptance:
    """The ISSUE acceptance bound: 1M rows, 0.5 s deadline, back within 2x."""

    def test_batch_matcher_respects_deadline(self, million_rows, star_pattern):
        budget = Budget(ResourceLimits(wall_clock_deadline=DEADLINE))
        started = time.monotonic()
        matches = OpsStarMatcher().find_matches(
            million_rows, star_pattern, budget=budget
        )
        elapsed = time.monotonic() - started
        assert elapsed < 2 * DEADLINE
        assert budget.tripped is not None
        assert "wall_clock_deadline" in budget.tripped
        assert matches  # partial results, not an empty bailout

    def test_streaming_matcher_respects_deadline(self, million_rows, star_pattern):
        matcher = OpsStreamMatcher(
            star_pattern,
            limits=ResourceLimits(wall_clock_deadline=DEADLINE),
        )
        started = time.monotonic()
        for row in million_rows:
            matcher.push(row)
            if matcher.tripped is not None:
                break
        elapsed = time.monotonic() - started
        assert elapsed < 2 * DEADLINE
        assert matcher.tripped is not None
        assert matcher.matches  # partial results survived the cutoff
