"""Kill-and-resume fault injection for the recovery subsystem.

Simulates a process crash mid-stream (the source raises at a planted
offset), restarts a fresh runner from the durable checkpoint, and
asserts the combined emission equals an uninterrupted run — no
duplicates, no losses — under both the compiled and interpreted
evaluators.  Also covers retry/backoff, checkpoint-corruption fallback,
and cross-query fingerprint rejection end to end.
"""

from __future__ import annotations

import dataclasses
import os
import random

import pytest

from repro.engine.catalog import Catalog
from repro.engine.csv_io import iter_csv, save_csv
from repro.engine.executor import Executor
from repro.engine.table import Schema, Table
from repro.errors import ExecutionError, RecoveryError, TransientSourceError
from repro.pattern.predicates import AttributeDomains
from repro.recovery import (
    CheckpointPolicy,
    CheckpointStore,
    RecoveringStreamRunner,
    RetryPolicy,
)
from repro.resilience import Diagnostics

QUERY = """
SELECT FIRST(Y).price, LAST(Z).price
FROM walk
  SEQUENCE BY t
  AS (X, *Y, *Z)
WHERE Y.price > Y.previous.price
  AND Z.price < Z.previous.price
"""


class PlannedCrash(Exception):
    """Simulated process death at a planted offset."""


def walk_rows(n=600, seed=11):
    rng = random.Random(seed)
    return [
        {"t": index, "price": float(rng.randint(1, 60))}
        for index in range(n)
    ]


def make_factory(rows, crash_at=None, transient_at=()):
    """An offset-addressable source with planted faults.

    ``crash_at`` raises :class:`PlannedCrash` (not retryable — the
    simulated process death).  ``transient_at`` is a set of offsets that
    raise :class:`TransientSourceError` once each (retryable).
    """
    fired = set()

    def factory(start):
        for offset in range(start, len(rows)):
            if crash_at is not None and offset == crash_at:
                raise PlannedCrash(f"crash at offset {offset}")
            if offset in transient_at and offset not in fired:
                fired.add(offset)
                raise TransientSourceError(f"hiccup at offset {offset}")
            yield offset, rows[offset]

    return factory


def make_executor(codegen=True):
    catalog = Catalog()
    catalog.register(
        Table("walk", Schema([("t", "int"), ("price", "float")]))
    )
    return Executor(
        catalog, domains=AttributeDomains.prices(), codegen=codegen
    )


@pytest.mark.parametrize("codegen", [True, False], ids=["compiled", "interpreted"])
@pytest.mark.parametrize("crash_at", [37, 150, 421])
def test_kill_and_resume_equals_uninterrupted(tmp_path, codegen, crash_at):
    rows = walk_rows()
    executor = make_executor(codegen)

    uninterrupted = list(
        executor.stream(QUERY, make_factory(rows)).rows
    )
    assert uninterrupted  # the workload must actually produce matches

    store = CheckpointStore(tmp_path / "ck")
    checkpoints = CheckpointPolicy(every_rows=25)
    first = executor.stream(
        QUERY, make_factory(rows, crash_at=crash_at),
        store=store, checkpoints=checkpoints,
    )
    combined = []
    with pytest.raises(PlannedCrash):
        for row in first.rows:
            combined.append(row)
    second = executor.stream(
        QUERY, make_factory(rows),
        store=store, checkpoints=checkpoints, resume=True,
    )
    combined.extend(second.rows)
    assert combined == uninterrupted
    assert second.diagnostics.checkpoints_restored == 1


@pytest.mark.parametrize("codegen", [True, False], ids=["compiled", "interpreted"])
def test_resume_under_other_evaluator(tmp_path, codegen):
    """A checkpoint written by one evaluator resumes under the other."""
    rows = walk_rows(300)
    expected = list(make_executor(codegen).stream(QUERY, make_factory(rows)).rows)

    store = CheckpointStore(tmp_path / "ck")
    first = make_executor(codegen).stream(
        QUERY, make_factory(rows, crash_at=140),
        store=store, checkpoints=CheckpointPolicy(every_rows=20),
    )
    combined = []
    with pytest.raises(PlannedCrash):
        combined.extend(first.rows)
    second = make_executor(not codegen).stream(
        QUERY, make_factory(rows), store=store, resume=True
    )
    combined.extend(second.rows)
    assert combined == expected


def test_exactly_once_no_duplicates_across_many_crashes(tmp_path):
    """Crash repeatedly at different offsets; every match arrives once."""
    rows = walk_rows(400)
    executor = make_executor()
    expected = list(executor.stream(QUERY, make_factory(rows)).rows)

    store = CheckpointStore(tmp_path / "ck")
    checkpoints = CheckpointPolicy(every_rows=10)
    combined = []
    crash_offsets = iter([60, 130, 230, 350, None])
    resume = False
    for crash_at in crash_offsets:
        streaming = executor.stream(
            QUERY, make_factory(rows, crash_at=crash_at),
            store=store, checkpoints=checkpoints, resume=resume,
        )
        resume = True
        try:
            combined.extend(streaming.rows)
        except PlannedCrash:
            continue
        break
    assert combined == expected


def test_retry_backoff_recovers_transient_errors(tmp_path):
    rows = walk_rows(200)
    executor = make_executor()
    expected = list(executor.stream(QUERY, make_factory(rows)).rows)

    # Offset 50 fails twice in a row (both reopen attempts), offset 120
    # once; a successful row in between resets the attempt counter.
    remaining = {50: 2, 120: 1}

    def flaky_factory(start):
        for offset in range(start, len(rows)):
            if remaining.get(offset, 0) > 0:
                remaining[offset] -= 1
                raise TransientSourceError(f"hiccup at offset {offset}")
            yield offset, rows[offset]

    sleeps = []
    diagnostics = Diagnostics()
    runner_query = executor.stream(
        QUERY,
        flaky_factory,
        retry=RetryPolicy(max_retries=3, backoff=0.5),
        diagnostics=diagnostics,
    )
    runner_query.runner._sleep = sleeps.append
    out = list(runner_query.rows)
    assert out == expected
    assert diagnostics.retries == 3
    # Consecutive failures back off geometrically; the successful rows
    # between 50 and 120 reset the attempt counter back to the base delay.
    assert sleeps == [0.5, 1.0, 0.5]


def test_retries_exhausted_propagates_then_resumes(tmp_path):
    rows = walk_rows(300)
    executor = make_executor()
    expected = list(executor.stream(QUERY, make_factory(rows)).rows)

    class Dying:
        """A source that fails transiently at one offset, forever."""

        def factory(self, start):
            for offset in range(start, len(rows)):
                if offset == 150:
                    raise TransientSourceError("persistent fault")
                yield offset, rows[offset]

    store = CheckpointStore(tmp_path / "ck")
    first = executor.stream(
        QUERY, Dying().factory,
        store=store, checkpoints=CheckpointPolicy(every_rows=20),
        retry=RetryPolicy(max_retries=2, backoff=0.0),
    )
    first.runner._sleep = lambda _: None
    combined = []
    with pytest.raises(TransientSourceError, match="persistent fault"):
        combined.extend(first.rows)
    assert first.diagnostics.retries == 2
    second = executor.stream(
        QUERY, make_factory(rows), store=store, resume=True
    )
    combined.extend(second.rows)
    assert combined == expected


def test_corrupted_checkpoint_falls_back_to_previous(tmp_path):
    rows = walk_rows(300)
    executor = make_executor()
    expected = list(executor.stream(QUERY, make_factory(rows)).rows)

    store = CheckpointStore(tmp_path / "ck")
    first = executor.stream(
        QUERY, make_factory(rows, crash_at=220),
        store=store, checkpoints=CheckpointPolicy(every_rows=15),
    )
    combined = []
    with pytest.raises(PlannedCrash):
        combined.extend(first.rows)
    # Corrupt the latest checkpoint; .prev must carry the resume.
    with open(store.path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        handle.write(b"\x00")
    second = executor.stream(
        QUERY, make_factory(rows), store=store, resume=True
    )
    resumed = list(second.rows)
    assert any("corrupt" in w for w in second.diagnostics.warnings)
    # Falling back one checkpoint weakens exactly-once to at-least-once:
    # every expected match arrives, duplicates are possible but bounded.
    assert set(combined + resumed) == set(expected)
    assert len(combined + resumed) >= len(expected)


def test_cross_query_checkpoint_rejected(tmp_path):
    rows = walk_rows(100)
    executor = make_executor()
    store = CheckpointStore(tmp_path / "ck")
    first = executor.stream(
        QUERY, make_factory(rows),
        store=store, checkpoints=CheckpointPolicy(every_rows=10),
    )
    list(first.rows)
    other_query = QUERY.replace("Y.price > Y.previous.price",
                                "Y.price < Y.previous.price")
    second = executor.stream(
        other_query, make_factory(rows), store=store, resume=True
    )
    with pytest.raises(RecoveryError, match="different pattern"):
        list(second.rows)


def test_resume_without_checkpoint_starts_fresh(tmp_path):
    rows = walk_rows(150)
    executor = make_executor()
    expected = list(executor.stream(QUERY, make_factory(rows)).rows)
    streaming = executor.stream(
        QUERY, make_factory(rows),
        store=CheckpointStore(tmp_path / "never-written"), resume=True,
    )
    assert list(streaming.rows) == expected
    assert any(
        "no checkpoint" in w for w in streaming.diagnostics.warnings
    )


def test_out_of_order_stream_rejected():
    rows = walk_rows(50)
    rows[20], rows[21] = rows[21], rows[20]  # break SEQUENCE BY t
    executor = make_executor()
    streaming = executor.stream(QUERY, make_factory(rows))
    with pytest.raises(ExecutionError, match="not ordered by SEQUENCE BY"):
        list(streaming.rows)


def test_csv_source_resumes_by_offset(tmp_path):
    """iter_csv + runner: kill mid-file, resume, identical output."""
    rows = walk_rows(250)
    schema = Schema([("t", "int"), ("price", "float")])
    table = Table("walk", schema)
    for row in rows:
        table.insert(row)
    csv_path = tmp_path / "walk.csv"
    save_csv(table, csv_path)

    executor = make_executor()
    expected = list(executor.stream(QUERY, make_factory(rows)).rows)

    crash = {"armed": True}

    def csv_factory(start):
        for offset, row in iter_csv(csv_path, schema, start_offset=start):
            if crash["armed"] and offset == 125:
                raise PlannedCrash("crash at 125")
            yield offset, row

    store = CheckpointStore(tmp_path / "ck")
    first = executor.stream(
        QUERY, csv_factory,
        store=store, checkpoints=CheckpointPolicy(every_rows=20),
    )
    combined = []
    with pytest.raises(PlannedCrash):
        combined.extend(first.rows)
    crash["armed"] = False
    second = executor.stream(QUERY, csv_factory, store=store, resume=True)
    combined.extend(second.rows)
    assert combined == expected
