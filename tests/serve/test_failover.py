"""Client failover: reconnect, idempotent dedup, subscription resume."""

from __future__ import annotations

import threading
import time

import pytest

from repro import failpoints
from repro.serve import (
    ConnectionLostError,
    FailoverPolicy,
    ServeClient,
    ServeError,
)

from tests.serve.conftest import CROSSING_QUERY, RISING_QUERY


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


#: Patient real-time policy for tests that restart a server mid-call.
PATIENT = FailoverPolicy(max_retries=20, backoff=0.05, max_backoff=0.5)


class TestConnectionLostError:
    def test_typing_and_payload(self):
        error = ConnectionLostError("gone", last_seq=17, attempts=3)
        assert isinstance(error, ServeError)
        assert isinstance(error, ConnectionError)
        assert error.code == "connection_lost"
        assert error.last_seq == 17
        assert error.attempts == 3
        assert not error.retryable

    def test_defaults(self):
        error = ConnectionLostError("gone")
        assert error.last_seq == -1
        assert error.attempts == 0


class TestFailoverPolicy:
    def test_full_jitter_bounds(self):
        policy = FailoverPolicy(backoff=0.1, jitter=1.0)
        assert policy.delay(1, rng=lambda: 0.0) == pytest.approx(0.0)
        assert policy.delay(1, rng=lambda: 0.999) < 0.1
        assert policy.delay(2, rng=lambda: 0.5) == pytest.approx(0.1)

    def test_no_jitter_is_exact_geometric(self):
        policy = FailoverPolicy(backoff=0.05, jitter=0.0, max_backoff=0.1)
        assert [policy.delay(n) for n in (1, 2, 3)] == [
            pytest.approx(0.05),
            pytest.approx(0.1),
            pytest.approx(0.1),  # capped
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            FailoverPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FailoverPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            FailoverPolicy(backoff_factor=0.5)


class TestQueryFailover:
    def test_query_survives_forced_restart(self, run_server):
        first = run_server()
        host, port = first.address
        with ServeClient(host, port, failover=PATIENT) as client:
            expected = client.query(CROSSING_QUERY).rows

            def restart():
                first.force_stop()
                run_server(port=port)

            restarter = threading.Thread(target=restart)
            restarter.start()
            try:
                # The old connection is dead (or dies on first use); the
                # client must reconnect to the reborn server and answer.
                reply = client.query(CROSSING_QUERY)
            finally:
                restarter.join(timeout=30.0)
            assert reply.rows == expected
            assert client.reconnects >= 1

    def test_retries_exhausted_raises_typed_error(self, run_server):
        handle = run_server()
        host, port = handle.address
        sleeps: list[float] = []
        client = ServeClient(
            host,
            port,
            failover=FailoverPolicy(max_retries=2, backoff=0.01, jitter=0.0),
            sleep=sleeps.append,
        )
        assert client.ping()["pong"] is True
        handle.force_stop()  # nobody restarts it
        with pytest.raises(ConnectionLostError) as info:
            client.query(RISING_QUERY)
        assert info.value.attempts == 2
        assert info.value.code == "connection_lost"
        # Both reconnect attempts slept the un-jittered schedule.
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_failover_disabled_raises_the_raw_error(self, run_server):
        handle = run_server()
        host, port = handle.address
        client = ServeClient(host, port, failover=None)
        assert client.ping()["pong"] is True  # fully established server-side
        handle.force_stop()
        with pytest.raises(ConnectionError) as info:
            client.query(RISING_QUERY)
        assert not isinstance(info.value, ConnectionLostError)


class TestRequestDedup:
    def test_send_crash_after_execution_is_deduplicated(self, catalog):
        """The razor's edge: the server executed the query but the
        connection died on the response send.  The client's retry must
        NOT re-run the query — it replays from the request ledger."""
        from repro.pattern.predicates import AttributeDomains
        from repro.serve import QueryServer, ServerThread

        executions = []

        def count(op, tenant, sql):
            if op == "query":
                executions.append(sql)

        # Arm before construction so the server binds failpoint metrics.
        failpoints.activate_spec(
            "serve.send_frame=raise:ConnectionResetError*1"
        )
        server = QueryServer(
            catalog,
            domains=AttributeDomains.prices(),
            fault_injector=count,
        )
        with ServerThread(server) as handle:
            with ServeClient(*handle.address, failover=PATIENT) as client:
                reply = client.query(CROSSING_QUERY)
                assert reply.rows  # the answer still arrived
                assert reply.deduplicated is True
                assert client.reconnects == 1
                assert len(executions) == 1  # executed exactly once

                stats = client.stats()
                assert stats["request_dedup"]["hits"] == 1
                assert stats["request_dedup"]["entries"] == 1
                metrics = client.metrics()
        assert 'repro_serve_request_dedup_total{tenant="default"} 1' in metrics
        assert "repro_failpoint_fires_total" in metrics

    def test_distinct_requests_are_never_deduplicated(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            first = client.query(CROSSING_QUERY)
            second = client.query(CROSSING_QUERY)
        assert first.deduplicated is False
        assert second.deduplicated is False
        assert first.rows == second.rows


class TestSubscriptionResume:
    def test_iterator_survives_forced_restart_exactly_once(
        self, catalog, run_server, tmp_path
    ):
        checkpoint_dir = str(tmp_path / "ckpt")

        def start(port=0):
            return run_server(
                checkpoint_dir=checkpoint_dir,
                subscription_checkpoint_every=1,
                port=port,
            )

        handle = start()
        host, port = handle.address
        with ServeClient(host, port) as reference:
            expected = [
                (row.seq, row.values)
                for row in reference.subscribe(RISING_QUERY, "reference")
            ]
        assert len(expected) >= 4

        delivered: list = []
        client = ServeClient(host, port, failover=PATIENT)
        try:
            rows = client.subscribe(RISING_QUERY, "durable")
            for row in rows:
                delivered.append((row.seq, row.values))
                if len(delivered) == 2:
                    # Crash the server mid-stream and resurrect it on the
                    # same port; the iterator must keep going on its own.
                    handle.force_stop()
                    start(port=port)
        finally:
            client.close()

        seqs = [seq for seq, _ in delivered]
        assert len(seqs) == len(set(seqs)), "duplicate delivery"
        assert delivered == expected
        assert client.reconnects >= 1

    def test_resume_exhaustion_carries_last_acked_seq(self, run_server, tmp_path):
        handle = run_server(
            checkpoint_dir=str(tmp_path / "ckpt"),
            subscription_checkpoint_every=1,
        )
        sleeps: list[float] = []
        client = ServeClient(
            *handle.address,
            failover=FailoverPolicy(max_retries=2, backoff=0.01, jitter=0.0),
            sleep=sleeps.append,
        )
        delivered = []
        with pytest.raises(ConnectionLostError) as info:
            for row in client.subscribe(CROSSING_QUERY, "doomed"):
                delivered.append(row)
                handle.force_stop()  # dies after the first row, forever
        assert delivered
        assert info.value.last_seq == delivered[-1].seq
        assert info.value.attempts == 2

    def test_disabled_failover_still_raises_typed_error_mid_stream(
        self, run_server, tmp_path
    ):
        """Satellite bug fix: a raw socket error must never escape a
        subscription iterator — even with failover off, the caller gets
        ConnectionLostError with the resume mark."""
        handle = run_server(
            checkpoint_dir=str(tmp_path / "ckpt"),
            subscription_checkpoint_every=1,
        )
        client = ServeClient(*handle.address, failover=None)
        delivered = []
        with pytest.raises(ConnectionLostError) as info:
            for row in client.subscribe(CROSSING_QUERY, "doomed"):
                delivered.append(row)
                handle.force_stop()
        assert info.value.last_seq == delivered[-1].seq


class TestFrameDropFailpoint:
    def test_nth_frame_drop_is_survived_by_subscriber(self, catalog, tmp_path):
        """serve.send_frame@N cuts the stream at a chosen frame; the
        subscriber's failover resumes with no duplicates and no gaps."""
        from repro.pattern.predicates import AttributeDomains
        from repro.serve import QueryServer, ServerThread

        server = QueryServer(
            catalog,
            domains=AttributeDomains.prices(),
            checkpoint_dir=str(tmp_path / "ckpt"),
            subscription_checkpoint_every=1,
        )
        with ServerThread(server) as handle:
            with ServeClient(*handle.address) as reference:
                expected = [
                    (row.seq, row.values)
                    for row in reference.subscribe(CROSSING_QUERY, "reference")
                ]
            # Drop the 3rd frame from now on (begin + row + row), once.
            failpoints.activate_spec("serve.send_frame=raise:BrokenPipeError@3*1")
            with ServeClient(*handle.address, failover=PATIENT) as client:
                delivered = [
                    (row.seq, row.values)
                    for row in client.subscribe(CROSSING_QUERY, "durable")
                ]
                assert client.reconnects >= 1
        assert delivered == expected
