"""End-to-end tests of the query server over real sockets.

Each test starts a live :class:`QueryServer` on an ephemeral port and
drives it through :class:`ServeClient` — the same path production
traffic takes, minus only the network between two processes.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.engine.executor import Executor
from repro.pattern.predicates import AttributeDomains
from repro.resilience import ResourceLimits
from repro.serve import ServeClient, TenantQuota
from repro.serve.client import ServeError
from repro.serve.protocol import decode_frame, encode_frame

from tests.serve.conftest import CROSSING_QUERY, RISING_QUERY


class TestQueries:
    def test_query_matches_serial_execution(self, run_server, catalog):
        serial = Executor(
            catalog, domains=AttributeDomains.prices()
        ).execute(RISING_QUERY)
        handle = run_server()
        with ServeClient(*handle.address) as client:
            reply = client.query(RISING_QUERY)
        assert reply.columns == list(serial.columns)
        assert reply.rows == [list(row) for row in serial.rows]
        assert reply.matches == len(serial.rows)
        assert not reply.limit_hit

    def test_plan_cache_is_shared_across_connections(self, run_server):
        handle = run_server()
        for _ in range(3):
            with ServeClient(*handle.address) as client:
                client.query(RISING_QUERY)
        with ServeClient(*handle.address) as client:
            stats = client.stats()
        assert stats["plan_cache"]["misses"] == 1
        assert stats["plan_cache"]["hits"] == 2
        assert stats["tables"] == ["quote"]

    def test_concurrent_clients_identical_results(self, run_server, catalog):
        serial = Executor(
            catalog, domains=AttributeDomains.prices()
        ).execute(CROSSING_QUERY)
        expected = [list(row) for row in serial.rows]
        handle = run_server(pool_workers=4)
        results: list = [None] * 8

        def worker(slot: int) -> None:
            with ServeClient(*handle.address, tenant=f"t{slot % 3}") as client:
                results[slot] = client.query(CROSSING_QUERY).rows

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert all(rows == expected for rows in results)

    def test_syntax_error_is_structured(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeError) as info:
                client.query("SELEKT nonsense")
            assert info.value.code == "syntax"
            # The connection survives a failed request.
            assert client.query(RISING_QUERY).rows

    def test_unknown_table_is_structured(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeError) as info:
                client.query(RISING_QUERY.replace("quote", "nope"))
            assert info.value.code == "execution"

    def test_ping_and_unknown_op(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            assert client.ping()["pong"] is True
            with pytest.raises(ServeError) as info:
                client.request("frobnicate")
            assert info.value.code == "unknown_op"

    def test_bad_request_fields(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            for fields in (
                {"sql": 42},
                {"sql": RISING_QUERY, "timeout": "soon"},
                {"sql": RISING_QUERY, "max_matches": -1},
                {"sql": RISING_QUERY, "workers": 0},
            ):
                with pytest.raises(ServeError) as info:
                    client.request("query", **fields)
                assert info.value.code == "bad_request"


class TestLimitsAndDeadlines:
    def test_expired_deadline_refused_up_front(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeError) as info:
                client.query(RISING_QUERY, timeout=0)
            assert info.value.code == "deadline"

    def test_request_max_matches_caps_the_result(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            reply = client.query(RISING_QUERY, max_matches=3)
        assert reply.matches == 3
        assert reply.limit_hit
        assert any("max_matches" in reason for reason in reply.limits_hit)

    def test_tenant_limits_apply_without_request_limits(self, run_server):
        handle = run_server(
            default_quota=TenantQuota(
                limits=ResourceLimits(max_matches=2)
            )
        )
        with ServeClient(*handle.address) as client:
            reply = client.query(RISING_QUERY)
        assert reply.matches == 2
        assert reply.limit_hit

    def test_request_cannot_widen_tenant_limits(self, run_server):
        handle = run_server(
            default_quota=TenantQuota(limits=ResourceLimits(max_matches=2))
        )
        with ServeClient(*handle.address) as client:
            reply = client.query(RISING_QUERY, max_matches=1000)
        assert reply.matches == 2


class TestAdmission:
    def test_quota_exhausted_carries_retry_after(self, run_server):
        handle = run_server(
            quotas={
                "poor": TenantQuota(rows_per_second=5.0, burst_rows=30.0)
            }
        )
        with ServeClient(*handle.address, tenant="poor") as client:
            client.query(RISING_QUERY)  # charges 60 scanned rows
            with pytest.raises(ServeError) as info:
                client.query(RISING_QUERY)
            assert info.value.code == "quota_exhausted"
            assert info.value.retry_after > 0
            assert info.value.retryable
        # Another tenant is unaffected.
        with ServeClient(*handle.address, tenant="rich") as client:
            assert client.query(RISING_QUERY).rows

    def test_backpressure_when_tenant_queue_full(self, run_server):
        release = threading.Event()
        entered = threading.Event()

        def slow_fault(op, tenant, sql):
            if tenant == "busy":
                entered.set()
                release.wait(timeout=30.0)

        handle = run_server(
            quotas={"busy": TenantQuota(max_concurrent=1, max_queued=0)},
            fault_injector=slow_fault,
        )
        blocker = ServeClient(*handle.address, tenant="busy")
        result: dict = {}

        def blocked_query():
            try:
                result["reply"] = blocker.query(RISING_QUERY)
            except ServeError as error:
                result["error"] = error

        thread = threading.Thread(target=blocked_query)
        thread.start()
        assert entered.wait(timeout=10.0)  # first query holds the slot
        try:
            with ServeClient(*handle.address, tenant="busy") as second:
                with pytest.raises(ServeError) as info:
                    second.query(RISING_QUERY)
                assert info.value.code == "backpressure"
                assert info.value.retry_after is not None
        finally:
            release.set()
            thread.join(timeout=10.0)
            blocker.close()
        assert "reply" in result  # the admitted query still finished


class TestProtocolFaults:
    def test_corrupt_frame_answered_and_connection_survives(self, run_server):
        handle = run_server()
        host, port = handle.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            reply = decode_frame(reader.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == "corrupt_frame"
            # Same connection still serves valid requests.
            sock.sendall(
                encode_frame(
                    {"id": 1, "op": "query", "sql": RISING_QUERY}
                )
            )
            reply = decode_frame(reader.readline())
            assert reply["ok"] is True

    def test_non_object_frame_rejected(self, run_server):
        handle = run_server()
        host, port = handle.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"[1,2,3]\n")
            reply = decode_frame(reader.readline())
            assert reply["error"]["code"] == "corrupt_frame"

    def test_blank_lines_ignored(self, run_server):
        handle = run_server()
        host, port = handle.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"\n\n" + encode_frame({"id": 5, "op": "ping"}))
            reply = decode_frame(reader.readline())
            assert reply == {
                "id": 5,
                "ok": True,
                "pong": True,
                "draining": False,
            }


class TestSubscriptions:
    def test_subscription_delivers_all_matches(self, run_server, catalog):
        serial = Executor(
            catalog, domains=AttributeDomains.prices()
        ).execute(CROSSING_QUERY)
        handle = run_server()
        with ServeClient(*handle.address) as client:
            rows = list(client.subscribe(CROSSING_QUERY, "s1"))
        assert [row.values for row in rows] == [
            list(row) for row in serial.rows
        ]
        seqs = [row.seq for row in rows]
        assert seqs == sorted(seqs)
        assert client.last_end["rows"] == len(rows)
        assert client.last_end["last_seq"] == seqs[-1]

    def test_after_seq_suppresses_delivered_prefix(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            rows = list(client.subscribe(CROSSING_QUERY, "s1"))
            assert len(rows) >= 3
            cut = rows[1].seq
            tail = list(client.subscribe(CROSSING_QUERY, "s1", after_seq=cut))
        assert [row.seq for row in tail] == [
            row.seq for row in rows if row.seq > cut
        ]

    def test_duplicate_subscription_id_rejected_while_active(
        self, run_server
    ):
        release = threading.Event()

        def slow_fault(op, tenant, sql):
            if op == "subscribe":
                release.wait(timeout=30.0)

        handle = run_server(fault_injector=slow_fault)
        first = ServeClient(*handle.address)
        first._send(
            {
                "id": 1,
                "op": "subscribe",
                "tenant": "default",
                "sql": CROSSING_QUERY,
                "subscription": "dup",
                "after_seq": -1,
            }
        )
        try:
            # The first subscription is admitted and begins (its begin
            # frame arrives) while its producer blocks in the injector.
            begin = first._check(first._recv())
            assert begin["event"] == "begin"
            with ServeClient(*handle.address) as second:
                with pytest.raises(ServeError) as info:
                    list(second.subscribe(CROSSING_QUERY, "dup"))
                assert info.value.code == "subscription_busy"
        finally:
            release.set()
            first.close()

    def test_subscription_checkpoints_persist(self, run_server, tmp_path):
        handle = run_server(checkpoint_dir=str(tmp_path / "ckpt"))
        with ServeClient(*handle.address) as client:
            first = list(client.subscribe(CROSSING_QUERY, "durable"))
            assert first
            # A client that acknowledges everything resumes to silence.
            acked = list(
                client.subscribe(
                    CROSSING_QUERY, "durable", after_seq=first[-1].seq
                )
            )
            assert acked == []
            # A client that declares no state (after_seq=-1) is behind
            # the checkpoint's high-water mark, so the server replays
            # from scratch rather than silently dropping its history.
            replay = list(client.subscribe(CROSSING_QUERY, "durable"))
        assert [(r.seq, r.values) for r in replay] == [
            (r.seq, r.values) for r in first
        ]

    def test_streaming_unsupported_query_is_structured(self, run_server):
        handle = run_server()
        cluster_query = (
            "SELECT X.day FROM quote CLUSTER BY name SEQUENCE BY day "
            "AS (X, Y) WHERE Y.price > X.price"
        )
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeError) as info:
                list(client.subscribe(cluster_query, "s1"))
            assert info.value.code == "execution"
            assert "CLUSTER BY" in info.value.message

    def test_unknown_sequence_by_column_is_structured(self, run_server):
        handle = run_server()
        bad_query = (
            "SELECT X.serial FROM quote SEQUENCE BY serial "
            "AS (X, Y) WHERE Y.price > X.price"
        )
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeError) as info:
                list(client.subscribe(bad_query, "s1"))
            assert info.value.code == "execution"
            assert "'serial'" in info.value.message


class TestLifecycle:
    def test_drain_refuses_new_requests(self, run_server):
        handle = run_server()
        client = ServeClient(*handle.address)
        try:
            assert client.query(RISING_QUERY).rows
            handle.stop(grace=2.0)
            with pytest.raises((ServeError, ConnectionError, OSError)):
                client.query(RISING_QUERY)
        finally:
            client.close()

    def test_remote_shutdown_gated(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeError) as info:
                client.shutdown()
            assert info.value.code == "unauthorized"

    def test_remote_shutdown_drains_when_allowed(self, run_server):
        handle = run_server(allow_remote_shutdown=True)
        with ServeClient(*handle.address) as client:
            assert client.shutdown()["draining"] is True
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if handle.server.draining:
                break
            time.sleep(0.02)
        assert handle.server.draining

    def test_drain_waits_for_inflight_queries(self, run_server):
        release = threading.Event()
        entered = threading.Event()

        def slow_fault(op, tenant, sql):
            entered.set()
            release.wait(timeout=5.0)

        handle = run_server(fault_injector=slow_fault)
        result: dict = {}
        client = ServeClient(*handle.address)

        def query():
            try:
                result["reply"] = client.query(RISING_QUERY)
            except Exception as error:  # noqa: BLE001
                result["error"] = error

        thread = threading.Thread(target=query)
        thread.start()
        try:
            assert entered.wait(timeout=10.0)
            stopper = threading.Thread(
                target=lambda: handle.stop(grace=10.0)
            )
            stopper.start()
            time.sleep(0.1)
            release.set()  # in-flight query finishes inside the grace
            stopper.join(timeout=30.0)
            thread.join(timeout=10.0)
        finally:
            release.set()
            client.close()
        assert "reply" in result
        assert result["reply"].rows
