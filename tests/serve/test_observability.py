"""Observability surfaces of the query server: stats reconciliation,
the metrics exposition op, subscription lag, and the slow-query log."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve import ServeClient, TenantQuota
from repro.serve.client import ServeError

from tests.serve.conftest import CROSSING_QUERY, RISING_QUERY


class TestUptime:
    def test_uptime_is_monotonic_and_fresh(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            first = client.stats()["uptime_s"]
            second = client.stats()["uptime_s"]
        assert 0.0 <= first <= second < 60.0


class TestAdmissionReconciliation:
    def test_admitted_counts_served_queries(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address, tenant="acme") as client:
            client.query(RISING_QUERY)
            client.query(RISING_QUERY)
            tenants = client.stats()["admission"]["tenants"]
        assert tenants["acme"]["admitted"] == 2
        assert tenants["acme"]["queries"] == 2
        assert tenants["acme"]["rejections"] == {}

    def test_expired_deadline_rejection_is_counted(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address, tenant="acme") as client:
            with pytest.raises(ServeError) as info:
                client.query(RISING_QUERY, timeout=0)
            assert info.value.code == "deadline"
            tenants = client.stats()["admission"]["tenants"]
        assert tenants["acme"]["rejections"] == {"deadline": 1}
        assert tenants["acme"]["admitted"] == 0

    def test_quota_rejection_is_counted(self, run_server):
        handle = run_server(
            quotas={"poor": TenantQuota(rows_per_second=5.0, burst_rows=30.0)}
        )
        with ServeClient(*handle.address, tenant="poor") as client:
            client.query(RISING_QUERY)  # drains the 30-row burst bucket
            with pytest.raises(ServeError) as info:
                client.query(RISING_QUERY)
            assert info.value.code == "quota_exhausted"
            tenants = client.stats()["admission"]["tenants"]
        assert tenants["poor"]["rejections"] == {"quota_exhausted": 1}
        assert tenants["poor"]["admitted"] == 1

    def test_every_observed_error_appears_in_stats(self, run_server):
        """Client-observed structured refusals reconcile exactly."""
        handle = run_server(
            quotas={"mixed": TenantQuota(rows_per_second=5.0, burst_rows=30.0)}
        )
        observed: dict[str, int] = {}
        with ServeClient(*handle.address, tenant="mixed") as client:
            attempts = [
                lambda: client.query(RISING_QUERY, timeout=0),
                lambda: client.query(RISING_QUERY),  # admitted, drains bucket
                lambda: client.query(RISING_QUERY),  # quota_exhausted
                lambda: client.query(RISING_QUERY, timeout=0),
            ]
            for attempt in attempts:
                try:
                    attempt()
                except ServeError as error:
                    observed[error.code] = observed.get(error.code, 0) + 1
            state = client.stats()["admission"]["tenants"]["mixed"]
        assert observed == {"deadline": 2, "quota_exhausted": 1}
        assert state["rejections"] == observed
        assert state["admitted"] == 1


class TestMetricsOp:
    def test_exposition_counts_requests_and_rejections(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address, tenant="acme") as client:
            client.query(RISING_QUERY)
            with pytest.raises(ServeError):
                client.query(RISING_QUERY, timeout=0)
            exposed = client.metrics()
        assert "# TYPE repro_serve_requests_total counter" in exposed
        assert 'repro_serve_requests_total{op="query"} 2' in exposed
        assert (
            'repro_serve_rejections_total{tenant="acme",code="deadline"} 1'
            in exposed
        )

    def test_engine_metrics_share_the_registry(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            client.query(RISING_QUERY)
            client.query(RISING_QUERY)
            exposed = client.metrics()
        assert "repro_plan_cache_misses_total 1" in exposed
        assert "repro_plan_cache_hits_total 1" in exposed
        assert "repro_query_seconds_count 2" in exposed


class TestSubscriptionLag:
    def test_active_subscription_is_visible_in_stats(self, run_server):
        release = threading.Event()

        def slow_fault(op, tenant, sql):
            if op == "subscribe":
                release.wait(timeout=30.0)

        handle = run_server(fault_injector=slow_fault)
        first = ServeClient(*handle.address, tenant="acme")
        first._send(
            {
                "id": 1,
                "op": "subscribe",
                "tenant": "acme",
                "sql": CROSSING_QUERY,
                "subscription": "lagged",
                "after_seq": -1,
            }
        )
        try:
            begin = first._check(first._recv())
            assert begin["event"] == "begin"
            with ServeClient(*handle.address) as other:
                stats = other.stats()
            detail = stats["subscription_detail"]["acme/lagged"]
            assert detail["delivered"] == 0
            assert detail["last_seq"] == -1
            assert detail["queue_depth"] >= 0
            assert detail["source_offset"] >= 0
        finally:
            release.set()
            first.close()

    def test_finished_subscription_leaves_no_residue(self, run_server):
        handle = run_server()
        with ServeClient(*handle.address) as client:
            rows = list(client.subscribe(CROSSING_QUERY, "done"))
            assert rows
            stats = client.stats()
        assert stats["subscription_detail"] == {}
        assert stats["subscriptions"] == 0


class TestSlowQueryLog:
    def test_slow_queries_logged_and_counted(self, run_server, tmp_path):
        target = tmp_path / "slow.jsonl"
        handle = run_server(
            slow_query_log=str(target), slow_query_threshold=0.0
        )
        with ServeClient(*handle.address, tenant="acme") as client:
            client.query(RISING_QUERY)
            stats = client.stats()
        assert stats["slow_queries"] == 1
        entries = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert len(entries) == 1
        assert entries[0]["tenant"] == "acme"
        assert entries[0]["ok"] is True
        assert entries[0]["sql"].startswith("SELECT X.day")
        assert entries[0]["elapsed_ms"] >= 0

    def test_fast_queries_stay_out_of_the_log(self, run_server, tmp_path):
        target = tmp_path / "slow.jsonl"
        handle = run_server(
            slow_query_log=str(target), slow_query_threshold=30.0
        )
        with ServeClient(*handle.address) as client:
            client.query(RISING_QUERY)
            stats = client.stats()
        assert stats["slow_queries"] == 0
        assert not target.exists() or target.read_text() == ""
