"""Shared fixtures: a tiny price table and a live server factory."""

from __future__ import annotations

import math

import pytest

from repro.engine.catalog import Catalog
from repro.engine.table import Schema, Table
from repro.pattern.predicates import AttributeDomains
from repro.serve import QueryServer, ServerThread


def price_table(rows: int = 60, name: str = "quote") -> Table:
    """A deterministic sine-wave price series: plenty of dip/recover
    patterns, zero randomness."""
    table = Table(
        name, Schema([("name", "str"), ("day", "int"), ("price", "float")])
    )
    for day in range(rows):
        table.insert(
            {
                "name": "IBM",
                "day": day,
                "price": round(100.0 + 10.0 * math.sin(day / 3.0), 4),
            }
        )
    return table


#: A query with matches spread across the whole series (one per upward
#: crossing of the centerline).
CROSSING_QUERY = (
    "SELECT X.day, Y.day FROM quote SEQUENCE BY day AS (X, Y) "
    "WHERE X.price < 100 AND Y.price >= 100"
)

#: Every adjacent rising pair: many matches, cheap to verify.
RISING_QUERY = (
    "SELECT X.day FROM quote SEQUENCE BY day AS (X, Y) "
    "WHERE Y.price > X.price"
)


@pytest.fixture
def catalog() -> Catalog:
    return Catalog([price_table()])


@pytest.fixture
def run_server(catalog):
    """Factory: start a QueryServer on its thread; always stopped at
    teardown (tests may also stop it themselves)."""
    handles = []

    def start(**kwargs) -> ServerThread:
        kwargs.setdefault("domains", AttributeDomains.prices())
        server = QueryServer(kwargs.pop("catalog", catalog), **kwargs)
        handle = ServerThread(server).start()
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        try:
            handle.stop(grace=1.0)
        except Exception:
            pass
