"""Unit tests for per-tenant quotas and admission control.

All timing runs against a fake clock, so the token-bucket arithmetic
(refill, burst cap, retry_after hints) is exact and instant.
"""

from __future__ import annotations

import pytest

from repro.resilience import ResourceLimits
from repro.serve.tenants import (
    AdmissionController,
    Rejection,
    TenantQuota,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTenantQuota:
    def test_defaults_are_unlimited_budget(self):
        quota = TenantQuota()
        assert quota.rows_per_second is None
        assert quota.burst_rows is None

    def test_burst_defaults_to_four_seconds_of_refill(self):
        quota = TenantQuota(rows_per_second=100.0)
        assert quota.burst_rows == 400.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrent": 0},
            {"max_queued": -1},
            {"rows_per_second": 0.0},
            {"rows_per_second": -5.0},
            {"burst_rows": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)

    def test_merge_limits_takes_the_tightest_bound(self):
        quota = TenantQuota(
            limits=ResourceLimits(max_matches=100, wall_clock_deadline=10.0)
        )
        merged = quota.merge_limits(timeout=2.0, max_matches=500)
        assert merged.wall_clock_deadline == 2.0  # request tighter
        assert merged.max_matches == 100  # tenant tighter

    def test_merge_limits_none_keeps_tenant_bounds(self):
        quota = TenantQuota(limits=ResourceLimits(max_rows_scanned=1000))
        merged = quota.merge_limits()
        assert merged.max_rows_scanned == 1000
        assert merged.wall_clock_deadline is None


class TestConcurrencyAdmission:
    def test_run_until_concurrency_cap(self, clock):
        controller = AdmissionController(
            default_quota=TenantQuota(max_concurrent=2, max_queued=1),
            clock=clock,
        )
        assert controller.reserve("t") == "run"
        assert controller.reserve("t") == "run"
        assert controller.reserve("t") == "queue"
        rejection = controller.reserve("t")
        assert isinstance(rejection, Rejection)
        assert rejection.code == "backpressure"
        assert rejection.retry_after is not None

    def test_finish_frees_a_slot_for_promotion(self, clock):
        controller = AdmissionController(
            default_quota=TenantQuota(max_concurrent=1, max_queued=1),
            clock=clock,
        )
        assert controller.reserve("t") == "run"
        assert controller.reserve("t") == "queue"
        assert controller.try_promote("t") is False  # slot still held
        controller.finish("t")
        assert controller.try_promote("t") is True

    def test_abandon_releases_the_queue_position(self, clock):
        controller = AdmissionController(
            default_quota=TenantQuota(max_concurrent=1, max_queued=1),
            clock=clock,
        )
        controller.reserve("t")
        assert controller.reserve("t") == "queue"
        controller.abandon("t")
        assert controller.reserve("t") == "queue"  # position free again

    def test_bookkeeping_errors_raise(self, clock):
        controller = AdmissionController(clock=clock)
        with pytest.raises(RuntimeError):
            controller.finish("t")
        with pytest.raises(RuntimeError):
            controller.try_promote("t")
        with pytest.raises(RuntimeError):
            controller.abandon("t")

    def test_tenants_are_isolated(self, clock):
        controller = AdmissionController(
            default_quota=TenantQuota(max_concurrent=1, max_queued=0),
            clock=clock,
        )
        assert controller.reserve("a") == "run"
        assert isinstance(controller.reserve("a"), Rejection)
        assert controller.reserve("b") == "run"  # b unaffected by a's load


class TestRowBudget:
    def quota(self) -> TenantQuota:
        return TenantQuota(
            max_concurrent=8, rows_per_second=100.0, burst_rows=200.0
        )

    def test_post_paid_charge_drains_the_bucket(self, clock):
        controller = AdmissionController(
            default_quota=self.quota(), clock=clock
        )
        assert controller.reserve("t") == "run"
        controller.finish("t", rows_scanned=500)  # overdraws: allowance -300
        rejection = controller.reserve("t")
        assert isinstance(rejection, Rejection)
        assert rejection.code == "quota_exhausted"
        # Refilling from -300 to just above 0 at 100 rows/s takes ~3s.
        assert rejection.retry_after == pytest.approx(3.01, abs=0.01)

    def test_bucket_refills_over_time(self, clock):
        controller = AdmissionController(
            default_quota=self.quota(), clock=clock
        )
        controller.reserve("t")
        controller.finish("t", rows_scanned=250)  # allowance -50
        assert isinstance(controller.reserve("t"), Rejection)
        clock.advance(1.0)  # +100 rows -> allowance 50
        assert controller.reserve("t") == "run"

    def test_refill_caps_at_burst(self, clock):
        controller = AdmissionController(
            default_quota=self.quota(), clock=clock
        )
        controller.reserve("t")
        controller.finish("t", rows_scanned=100)
        clock.advance(3600.0)  # an hour of refill
        snapshot = controller.snapshot()
        assert snapshot["tenants"]["t"]["allowance"] == 200.0  # burst cap

    def test_unlimited_tenant_never_rejected_on_budget(self, clock):
        controller = AdmissionController(
            default_quota=TenantQuota(max_concurrent=100), clock=clock
        )
        for _ in range(50):
            assert controller.reserve("t") == "run"
            controller.finish("t", rows_scanned=10**9)


class TestDrainAndSnapshot:
    def test_drain_rejects_everything(self, clock):
        controller = AdmissionController(clock=clock)
        controller.drain()
        rejection = controller.reserve("t")
        assert isinstance(rejection, Rejection)
        assert rejection.code == "draining"
        assert controller.draining

    def test_named_quota_overrides_default(self, clock):
        controller = AdmissionController(
            default_quota=TenantQuota(max_concurrent=8),
            quotas={"small": TenantQuota(max_concurrent=1, max_queued=0)},
            clock=clock,
        )
        assert controller.reserve("small") == "run"
        assert isinstance(controller.reserve("small"), Rejection)
        assert controller.reserve("anyone-else") == "run"
        assert controller.reserve("anyone-else") == "run"

    def test_snapshot_shape(self, clock):
        controller = AdmissionController(
            default_quota=TenantQuota(
                max_concurrent=1, max_queued=0, rows_per_second=10.0
            ),
            clock=clock,
        )
        controller.reserve("t")
        controller.finish("t", rows_scanned=7, matches=2)
        assert controller.reserve("t") == "run"
        assert isinstance(controller.reserve("t"), Rejection)  # backpressure
        snapshot = controller.snapshot()
        record = snapshot["tenants"]["t"]
        assert record["queries"] == 1
        assert record["rows_charged"] == 7
        assert record["matches"] == 2
        assert record["running"] == 1
        assert record["rejections"] == {"backpressure": 1}
