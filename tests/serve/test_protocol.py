"""Unit tests for the newline-delimited JSON wire protocol."""

from __future__ import annotations

import datetime
import json

import pytest

from repro.errors import (
    ExecutionError,
    LimitExceeded,
    PlanningError,
    RecoveryError,
    SemanticError,
    SqlTsSyntaxError,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_code_for,
    error_for_exception,
    error_payload,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"id": 7, "op": "query", "sql": "SELECT ..."}
        assert decode_frame(encode_frame(payload)) == payload

    def test_one_line_per_frame(self):
        frame = encode_frame({"id": 1})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1

    def test_compact_encoding(self):
        assert b" " not in encode_frame({"a": [1, 2], "b": {"c": 3}})

    def test_dates_serialize_as_iso(self):
        frame = encode_frame(
            {"rows": [[datetime.date(1999, 1, 25)]]}
        )
        assert json.loads(frame)["rows"] == [["1999-01-25"]]

    def test_exotic_values_fall_back_to_str(self):
        frame = encode_frame({"value": {1, 2} if False else complex(1, 2)})
        assert "(1+2j)" in frame.decode()

    def test_oversize_frame_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_non_utf8_rejected(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_frame(b"\xff\xfe{}\n")

    def test_non_json_rejected(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_frame(b"hello world\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(b'"a string"\n')


class TestErrorMapping:
    @pytest.mark.parametrize(
        "error, code",
        [
            (SqlTsSyntaxError("bad token"), "syntax"),
            (SemanticError("unknown attr"), "semantic"),
            (PlanningError("not plannable"), "planning"),
            (LimitExceeded("deadline"), "limit"),
            (RecoveryError("bad checkpoint"), "recovery"),
            (ExecutionError("no such table"), "execution"),
            (ProtocolError("bad frame"), "corrupt_frame"),
            (RuntimeError("worker died"), "internal"),
        ],
    )
    def test_stable_codes(self, error, code):
        assert error_code_for(error) == code

    def test_library_errors_keep_their_message(self):
        payload = error_for_exception(SqlTsSyntaxError("expected SELECT"), 3)
        assert payload == {
            "id": 3,
            "ok": False,
            "error": {
                "code": "syntax",
                "message": "expected SELECT",
                "retry_after": None,
            },
        }

    def test_internal_errors_name_the_class(self):
        payload = error_for_exception(ValueError("boom"))
        assert payload["error"]["code"] == "internal"
        assert "ValueError" in payload["error"]["message"]

    def test_error_payload_shape(self):
        payload = error_payload(
            "quota_exhausted", "budget spent", retry_after=1.5, request_id=9
        )
        assert payload["ok"] is False
        assert payload["error"]["retry_after"] == 1.5
        # The payload must itself survive the wire.
        assert decode_frame(encode_frame(payload)) == payload
