"""Shared fixtures: paper predicates, patterns, datasets, catalogs."""

from __future__ import annotations

import pytest

from repro.data.djia import djia_table
from repro.data.quotes import quote_table
from repro.engine.catalog import Catalog
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import AttributeDomains, col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

PRICE = col("price")
PREV = PRICE.previous
DOMAINS = AttributeDomains.prices()


def price_predicate(*conditions, label=""):
    """An ElementPredicate over the price attribute with positive domain."""
    return predicate(*conditions, domains=DOMAINS, label=label)


@pytest.fixture(scope="session")
def example4_predicates():
    """The paper's Example 4 predicates p1..p4 (Section 4)."""
    p1 = price_predicate(comparison(PRICE, "<", PREV), label="p1")
    p2 = price_predicate(
        comparison(PRICE, "<", PREV),
        comparison(40, "<", PRICE),
        comparison(PRICE, "<", 50),
        label="p2",
    )
    p3 = price_predicate(
        comparison(PRICE, ">", PREV), comparison(PRICE, "<", 52), label="p3"
    )
    p4 = price_predicate(comparison(PRICE, ">", PREV), label="p4")
    return [p1, p2, p3, p4]


@pytest.fixture(scope="session")
def example4_pattern(example4_predicates):
    """Example 4 as a 4-element star-free PatternSpec (Y, Z, T, U)."""
    names = ["Y", "Z", "T", "U"]
    return PatternSpec(
        [PatternElement(n, p) for n, p in zip(names, example4_predicates)]
    )


@pytest.fixture(scope="session")
def example4_compiled(example4_pattern):
    return compile_pattern(example4_pattern)


@pytest.fixture(scope="session")
def example9_pattern():
    """The paper's Example 9 star pattern (*X, Y, *Z, *T, U, *V, S)."""
    p1 = price_predicate(comparison(PRICE, ">", PREV), label="p1")
    p2 = price_predicate(
        comparison(30, "<", PRICE), comparison(PRICE, "<", 40), label="p2"
    )
    p3 = price_predicate(comparison(PRICE, "<", PREV), label="p3")
    p4 = price_predicate(comparison(PRICE, ">", PREV), label="p4")
    p5 = price_predicate(
        comparison(35, "<", PRICE), comparison(PRICE, "<", 40), label="p5"
    )
    p6 = price_predicate(comparison(PRICE, "<", PREV), label="p6")
    p7 = price_predicate(comparison(PRICE, "<", 30), label="p7")
    return PatternSpec(
        [
            PatternElement("X", p1, star=True),
            PatternElement("Y", p2),
            PatternElement("Z", p3, star=True),
            PatternElement("T", p4, star=True),
            PatternElement("U", p5),
            PatternElement("V", p6, star=True),
            PatternElement("S", p7),
        ]
    )


@pytest.fixture(scope="session")
def example9_compiled(example9_pattern):
    """Example 9 compiled with the paper's literal rule set.

    The equivalence refinement (on by default) legitimately strengthens
    shift(6) from the paper's 3 to 4 — see
    tests/pattern/test_paper_example9.py::TestEquivalenceRefinement — so
    the paper-fidelity assertions pin the unrefined plan.
    """
    return compile_pattern(example9_pattern, use_equivalence=False)


@pytest.fixture(scope="session")
def example9_refined(example9_pattern):
    """Example 9 compiled with the default (refined) rule set."""
    return compile_pattern(example9_pattern)


def price_rows(*prices):
    """Rows with a single price column."""
    return [{"price": float(p)} for p in prices]


@pytest.fixture(scope="session")
def paper_catalog():
    """A catalog with the quote and synthetic DJIA tables."""
    catalog = Catalog()
    catalog.register(quote_table(days=250, seed=7))
    catalog.register(djia_table())
    return catalog
